#include "vgpu/executor.hpp"

#include <array>
#include <optional>

#include "vgpu/check.hpp"
#include "vgpu/coalesce.hpp"
#include "vgpu/decode.hpp"
#include "vgpu/memo.hpp"
#include "vgpu/opclass.hpp"
#include "vgpu/progcache.hpp"

namespace vgpu {

void count_global_step(const StepResult& res, const DeviceSpec& spec,
                       DriverModel driver, LaunchStats& stats,
                       CoalesceResult& scratch, CoalesceMemo* memo) {
  const std::uint32_t half = spec.half_warp;
  std::array<std::uint32_t, 16> addrs{};
  for (std::uint32_t h = 0; h < spec.warp_size / half; ++h) {
    std::uint32_t active = 0;
    for (std::uint32_t k = 0; k < half; ++k) {
      const std::uint32_t lane = h * half + k;
      addrs[k] = res.lane_addrs[lane];
      if (res.mem_mask & (1u << lane)) active |= 1u << k;
    }
    if (active == 0) continue;
    MemRequest req{std::span<const std::uint32_t>(addrs.data(), half), active,
                   res.width, res.is_store};
    if (memo != nullptr) {
      memo->lookup(req, scratch);
    } else {
      coalesce(req, driver, scratch);
    }
    ++stats.global_requests;
    if (scratch.coalesced) {
      ++stats.coalesced_requests;
    } else {
      ++stats.uncoalesced_requests;
    }
    stats.global_transactions += scratch.transactions.size();
    stats.global_bytes += scratch.total_bytes();
  }
}

LaunchStats run_functional(const Program& prog, const DeviceSpec& spec,
                           GlobalMemory& gmem, const LaunchConfig& cfg,
                           std::span<const std::uint32_t> params,
                           const FunctionalOptions& opt) {
  VGPU_EXPECTS_MSG(params.size() == prog.num_params, "parameter count mismatch");
  VGPU_EXPECTS(cfg.grid_blocks >= 1);

  LaunchStats stats;
  stats.blocks_total = cfg.grid_blocks;
  stats.blocks_simulated = cfg.grid_blocks;
  CoalesceResult scratch;
  scratch.transactions.reserve(32);

  std::shared_ptr<const CompiledKernel> ck;
  std::optional<CoalesceMemo> memo;
  std::optional<ConflictMemo> cmemo;
  if (!opt.reference) {
    bool cache_hit = false;
    ck = acquire_compiled(prog, opt.decode_cache, &cache_hit);
    if (opt.decode_cache) {
      ++(cache_hit ? stats.decode_cache_hits : stats.decode_cache_misses);
    }
    memo.emplace(opt.driver);
    cmemo.emplace(spec.warp_size, spec.half_warp, spec.shared_mem_banks);
  }
  CoalesceMemo* const memop = memo ? &*memo : nullptr;
  const bool batched = opt.batched && !opt.reference;
  const bool specialized = batched && opt.specialized;

  // Per-step accounting, shared between the single-step dispatch and the
  // fused boundary step (both see the same StepResult the step would have
  // produced, so the stats cannot differ between the two paths).
  auto account_step = [&](const StepResult& res) {
    ++stats.warp_instructions;
    ++stats.region_instructions[static_cast<std::size_t>(res.region)];
    ++stats.instr_class_counts[static_cast<std::size_t>(instr_class(res.op))];
    if (res.divergent_branch) ++stats.divergent_branches;
    switch (res.kind) {
      case StepResult::Kind::kGlobal:
        count_global_step(res, spec, opt.driver, stats, scratch, memop);
        break;
      case StepResult::Kind::kShared:
        count_shared_step(res, stats);
        break;
      case StepResult::Kind::kLocal:
        ++stats.local_requests;
        break;
      case StepResult::Kind::kConst:
        ++stats.const_requests;
        break;
      case StepResult::Kind::kTex:
        ++stats.tex_requests;
        break;
      case StepResult::Kind::kBarrier:
        ++stats.barriers;
        break;
      default:
        break;
    }
  };
  // Reused across fused boundary steps; exec_boundary rewrites every field
  // the accounting below reads.
  StepResult fres;
  StepResult* const fusedp = specialized ? &fres : nullptr;

  // Fast path: one BlockExec reused across the grid (reset() per block);
  // reference path: a fresh BlockExec per block, as the original executor
  // allocated.
  std::optional<BlockExec> exec;
  for (std::uint32_t b = 0; b < cfg.grid_blocks; ++b) {
    BlockParams bp{b, cfg, params, 0, opt.cmem};
    if (!exec || opt.reference) {
      exec.emplace(prog, spec, gmem, bp, ck ? &ck->decoded() : nullptr);
      if (cmemo) exec->set_conflict_memo(&*cmemo);
      if (ck && opt.dispatch == RunDispatch::kThreaded) {
        exec->set_threaded(&ck->threaded());
        if (specialized) {
          exec->set_traces(&ck->traces(), &stats.traces_entered);
        }
      }
    } else {
      exec->reset(bp);
    }
    while (!exec->all_done()) {
      bool progressed = false;
      for (std::uint32_t w = 0; w < exec->num_warps(); ++w) {
        WarpState& ws = exec->warp(w);
        while (!ws.done && !ws.at_barrier) {
          if (batched) {
            // Issue a whole converged straight-line run in one dispatch and
            // fold in its pre-aggregated accounting. A maximal run is always
            // followed by a non-batchable instruction: with specialization
            // on, a fusable memory terminator executes inside the same
            // dispatch (fused boundary step); otherwise fall through to the
            // single-step dispatch for it directly.
            bool fdone = false;
            if (const DecodedRun* run = exec->step_run(w, 0, fusedp, &fdone)) {
              progressed = true;
              stats.warp_instructions += run->len;
              stats.region_instructions[static_cast<std::size_t>(run->region)] +=
                  run->len;
              for (std::size_t c = 0; c < run->class_counts.size(); ++c) {
                stats.instr_class_counts[c] += run->class_counts[c];
              }
              if (fdone) {
                account_step(fres);
                ++stats.fused_boundary_ops;
                continue;
              }
            }
          }
          const StepResult res = exec->step(w, ws.issued * 4);
          progressed = true;
          account_step(res);
        }
      }
      if (exec->barrier_releasable()) {
        exec->release_barrier();
        progressed = true;
      }
      VGPU_ENSURES_MSG(progressed || exec->all_done(),
                       "functional executor deadlock (barrier mismatch?)");
    }
  }
  if (memo) {
    stats.coalesce_memo_hits = memo->hits();
    stats.coalesce_memo_misses = memo->misses();
  }
  if (cmemo) {
    stats.conflict_memo_hits = cmemo->hits();
    stats.conflict_memo_misses = cmemo->misses();
  }
  return stats;
}

}  // namespace vgpu
