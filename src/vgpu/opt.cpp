#include "vgpu/opt.hpp"

#include <bit>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vgpu/check.hpp"
#include "vgpu/verify.hpp"

namespace vgpu {

namespace {

[[nodiscard]] bool has_side_effect(const Instruction& in) {
  switch (in.op) {
    case Opcode::kStGlobal:
    case Opcode::kStShared:
    case Opcode::kStLocal:
    case Opcode::kBra:
    case Opcode::kBraCond:
    case Opcode::kExit:
    case Opcode::kBar:
    case Opcode::kClock:  // timing probe: removal would change measurements
      return true;
    default:
      return false;
  }
}

/// Scalar, unguarded definition (the only kind the local passes track).
[[nodiscard]] bool is_trackable_def(const Program& prog, const Instruction& in) {
  return in.dst.valid() && in.guard == kNoPred && prog.regs[in.dst.reg].width == 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// constant folding
// ---------------------------------------------------------------------------

OptStats fold_constants(Program& prog) {
  OptStats stats;
  // Registers defined exactly once, by an unguarded kMovImm, hold their
  // constant everywhere they are live (any use is dominated by the single
  // definition), so they seed every block's constant map. This keeps
  // folding working across blocks, e.g. after invariant code motion moved
  // a constant into a loop preheader.
  std::unordered_map<RegId, std::uint32_t> global_consts;
  {
    std::unordered_map<RegId, std::uint32_t> def_count;
    for (const Block& blk : prog.blocks) {
      for (const Instruction& in : blk.instrs) {
        if (in.dst.valid()) ++def_count[in.dst.reg];
      }
    }
    for (const Block& blk : prog.blocks) {
      for (const Instruction& in : blk.instrs) {
        if (in.op == Opcode::kMovImm && is_trackable_def(prog, in) &&
            def_count[in.dst.reg] == 1) {
          global_consts[in.dst.reg] = in.imm;
        }
      }
    }
  }
  for (Block& blk : prog.blocks) {
    std::unordered_map<RegId, std::uint32_t> consts = global_consts;
    auto lookup = [&](const Operand& o, std::uint32_t& out) {
      if (!o.valid() || o.comp != 0) return false;
      auto it = consts.find(o.reg);
      if (it == consts.end()) return false;
      out = it->second;
      return true;
    };
    for (Instruction& in : blk.instrs) {
      if (in.guard == kNoPred) {
        std::uint32_t a = 0;
        std::uint32_t b = 0;
        std::uint32_t c = 0;
        const bool ca = lookup(in.src[0], a);
        const bool cb = lookup(in.src[1], b);
        const bool cc = lookup(in.src[2], c);
        auto to_movimm = [&](std::uint32_t v) {
          in.op = Opcode::kMovImm;
          in.src[0] = in.src[1] = in.src[2] = Operand{};
          in.imm = v;
          ++stats.constants_folded;
        };
        auto to_iaddimm = [&](Operand reg_src, std::uint32_t add) {
          in.op = Opcode::kIAddImm;
          in.src[0] = reg_src;
          in.src[1] = in.src[2] = Operand{};
          in.imm = add;
          ++stats.constants_folded;
        };
        switch (in.op) {
          case Opcode::kIAdd:
            if (ca && cb) to_movimm(a + b);
            else if (cb) to_iaddimm(in.src[0], b);
            else if (ca) to_iaddimm(in.src[1], a);
            break;
          case Opcode::kISub:
            if (ca && cb) to_movimm(a - b);
            else if (cb) to_iaddimm(in.src[0], 0u - b);
            break;
          case Opcode::kIMul:
            if (ca && cb) to_movimm(a * b);
            break;
          case Opcode::kIMad:
            if (ca && cb && cc) to_movimm(a * b + c);
            else if (ca && cb) to_iaddimm(in.src[2], a * b);
            break;
          case Opcode::kIAddImm:
            if (ca) to_movimm(a + in.imm);
            break;
          case Opcode::kShl:
            if (ca && cb) to_movimm(a << (b & 31u));
            break;
          case Opcode::kShr:
            if (ca && cb) to_movimm(a >> (b & 31u));
            break;
          case Opcode::kMov:
            if (ca) to_movimm(a);
            break;
          case Opcode::kI2F:
            if (ca) to_movimm(std::bit_cast<std::uint32_t>(static_cast<float>(a)));
            break;
          default:
            break;
        }
      }
      // update tracking: a definition either records a new constant or kills
      // the old knowledge about the register.
      if (in.dst.valid()) {
        if (in.op == Opcode::kMovImm && is_trackable_def(prog, in)) {
          consts[in.dst.reg] = in.imm;
        } else {
          consts.erase(in.dst.reg);
        }
      }
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// copy propagation
// ---------------------------------------------------------------------------

OptStats propagate_copies(Program& prog) {
  OptStats stats;
  for (Block& blk : prog.blocks) {
    std::unordered_map<RegId, Operand> alias;
    auto kill = [&](RegId r) {
      alias.erase(r);
      for (auto it = alias.begin(); it != alias.end();) {
        if (it->second.reg == r) {
          it = alias.erase(it);
        } else {
          ++it;
        }
      }
    };
    for (Instruction& in : blk.instrs) {
      for (Operand& o : in.src) {
        if (!o.valid() || o.comp != 0) continue;
        auto it = alias.find(o.reg);
        if (it != alias.end()) {
          o = it->second;
          ++stats.copies_propagated;
        }
      }
      if (in.dst.valid()) {
        kill(in.dst.reg);
        if (in.op == Opcode::kMov && is_trackable_def(prog, in) &&
            in.src[0].reg != in.dst.reg) {
          alias[in.dst.reg] = in.src[0];
        }
      }
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// address folding
// ---------------------------------------------------------------------------

OptStats fold_addresses(Program& prog) {
  OptStats stats;
  struct AddrInfo {
    Operand root;
    std::uint32_t offset = 0;
  };
  // single-definition MovImm registers are absolute addresses
  std::unordered_map<RegId, std::uint32_t> abs_consts;
  {
    std::unordered_map<RegId, std::uint32_t> def_count;
    for (const Block& blk : prog.blocks) {
      for (const Instruction& in : blk.instrs) {
        if (in.dst.valid()) ++def_count[in.dst.reg];
      }
    }
    for (const Block& blk : prog.blocks) {
      for (const Instruction& in : blk.instrs) {
        if (in.op == Opcode::kMovImm && is_trackable_def(prog, in) &&
            def_count[in.dst.reg] == 1) {
          abs_consts[in.dst.reg] = in.imm;
        }
      }
    }
  }
  for (Block& blk : prog.blocks) {
    std::unordered_map<RegId, AddrInfo> addrs;
    // block-local MovImm addresses (e.g. per-copy constants after full
    // unrolling) are tracked like the global single-def ones
    std::unordered_map<RegId, std::uint32_t> local_consts;
    auto kill = [&](RegId r) {
      addrs.erase(r);
      for (auto it = addrs.begin(); it != addrs.end();) {
        if (it->second.root.reg == r) {
          it = addrs.erase(it);
        } else {
          ++it;
        }
      }
    };
    for (Instruction& in : blk.instrs) {
      if (in.is_memory()) {
        Operand& a = in.src[0];
        if (a.valid() && a.comp == 0) {
          auto it = addrs.find(a.reg);
          if (it != addrs.end()) {
            a = it->second.root;
            in.imm += it->second.offset;
            ++stats.addresses_folded;
          }
        }
        // constant base -> absolute immediate address
        if (a.valid() && a.comp == 0) {
          auto lc = local_consts.find(a.reg);
          const auto gc = abs_consts.find(a.reg);
          if (lc != local_consts.end()) {
            in.imm += lc->second;
            a = Operand{};
            ++stats.addresses_folded;
          } else if (gc != abs_consts.end()) {
            in.imm += gc->second;
            a = Operand{};
            ++stats.addresses_folded;
          }
        }
      }
      if (in.dst.valid()) {
        const RegId d = in.dst.reg;
        if (in.op == Opcode::kIAddImm && is_trackable_def(prog, in) &&
            in.src[0].reg != d) {
          AddrInfo info{in.src[0], in.imm};
          auto it = addrs.find(in.src[0].reg);
          if (it != addrs.end() && in.src[0].comp == 0) {
            info.root = it->second.root;
            info.offset = it->second.offset + in.imm;
          }
          kill(d);
          local_consts.erase(d);
          addrs[d] = info;
        } else if (in.op == Opcode::kMovImm && is_trackable_def(prog, in)) {
          kill(d);
          local_consts[d] = in.imm;
        } else {
          kill(d);
          local_consts.erase(d);
        }
      }
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// dead code elimination
// ---------------------------------------------------------------------------

OptStats eliminate_dead_code(Program& prog) {
  OptStats stats;
  const std::size_t nregs = prog.regs.size();
  const std::size_t npreds = prog.num_preds;

  // Phase 1 (global): remove definitions of registers/predicates that have
  // zero uses anywhere in the program. This catches multi-block leftovers
  // such as the per-copy induction-variable moves after full unrolling.
  {
    std::vector<std::uint32_t> reg_uses(nregs, 0);
    std::vector<std::uint32_t> pred_uses(npreds, 0);
    for (const Block& blk : prog.blocks) {
      for (const Instruction& in : blk.instrs) {
        for (const Operand& s : in.src) {
          if (s.valid()) ++reg_uses[s.reg];
        }
        if (in.psrc0 != kNoPred) ++pred_uses[in.psrc0];
        if (in.psrc1 != kNoPred) ++pred_uses[in.psrc1];
        if (in.guard != kNoPred) ++pred_uses[in.guard];
      }
    }
    for (Block& blk : prog.blocks) {
      auto& instrs = blk.instrs;
      for (std::size_t k = instrs.size(); k-- > 0;) {
        const Instruction& in = instrs[k];
        if (has_side_effect(in) || in.guard != kNoPred) continue;
        const bool defines_reg = in.dst.valid();
        const bool defines_pred = in.pdst != kNoPred;
        if (!defines_reg && !defines_pred) continue;
        if (defines_reg && reg_uses[in.dst.reg] != 0) continue;
        if (defines_pred && pred_uses[in.pdst] != 0) continue;
        instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(k));
        ++stats.dead_removed;
      }
    }
  }

  // A register (or predicate) is a local candidate only if every definition
  // and use sits in one single block.
  std::vector<std::int32_t> reg_block(nregs, -1);   // -2 = crosses blocks
  std::vector<std::int32_t> pred_block(npreds, -1);
  auto touch = [](std::vector<std::int32_t>& v, std::size_t id, std::int32_t b) {
    if (v[id] == -1) {
      v[id] = b;
    } else if (v[id] != b) {
      v[id] = -2;
    }
  };
  for (std::size_t bi = 0; bi < prog.blocks.size(); ++bi) {
    const auto b = static_cast<std::int32_t>(bi);
    for (const Instruction& in : prog.blocks[bi].instrs) {
      if (in.dst.valid()) touch(reg_block, in.dst.reg, b);
      for (const Operand& s : in.src) {
        if (s.valid()) touch(reg_block, s.reg, b);
      }
      if (in.pdst != kNoPred) touch(pred_block, in.pdst, b);
      if (in.psrc0 != kNoPred) touch(pred_block, in.psrc0, b);
      if (in.psrc1 != kNoPred) touch(pred_block, in.psrc1, b);
      if (in.guard != kNoPred) touch(pred_block, in.guard, b);
    }
  }

  // Phase 2 (per block, backward): three-state per register -
  //   kDead: no use before the end of the block / the next overwriting def,
  //          so an unguarded pure definition here is removable. Block-local
  //          registers start dead; cross-block registers become dead when a
  //          later unconditional definition in the same block supersedes
  //          them (dead-store elimination on registers).
  //   kLive: used later in the block before any kill.
  //   kUnknown: cross-block register with no later in-block event.
  enum class St : std::uint8_t { kUnknown, kLive, kDead };
  std::vector<St> reg_st(nregs);
  std::vector<St> pred_st(npreds);
  for (std::size_t bi = 0; bi < prog.blocks.size(); ++bi) {
    const auto b = static_cast<std::int32_t>(bi);
    for (std::size_t r = 0; r < nregs; ++r) {
      reg_st[r] = reg_block[r] == b ? St::kDead : St::kUnknown;
    }
    for (std::size_t p = 0; p < npreds; ++p) {
      pred_st[p] = pred_block[p] == b ? St::kDead : St::kUnknown;
    }
    auto& instrs = prog.blocks[bi].instrs;
    for (std::size_t k = instrs.size(); k-- > 0;) {
      Instruction& in = instrs[k];
      const bool defines_reg = in.dst.valid();
      const bool defines_pred = in.pdst != kNoPred;
      const bool removable =
          !has_side_effect(in) && in.guard == kNoPred &&
          (defines_reg || defines_pred) &&
          (!defines_reg || reg_st[in.dst.reg] == St::kDead) &&
          (!defines_pred || pred_st[in.pdst] == St::kDead);
      if (removable) {
        instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(k));
        ++stats.dead_removed;
        continue;
      }
      // kept: an unguarded definition kills earlier definitions...
      if (in.dst.valid() && in.guard == kNoPred) reg_st[in.dst.reg] = St::kDead;
      if (in.pdst != kNoPred && in.guard == kNoPred) pred_st[in.pdst] = St::kDead;
      // ...and uses (including guarded partial defs, which read the old
      // value) make the register live.
      if (in.dst.valid() && in.guard != kNoPred) reg_st[in.dst.reg] = St::kLive;
      for (const Operand& s : in.src) {
        if (s.valid()) reg_st[s.reg] = St::kLive;
      }
      if (in.psrc0 != kNoPred) pred_st[in.psrc0] = St::kLive;
      if (in.psrc1 != kNoPred) pred_st[in.psrc1] = St::kLive;
      if (in.guard != kNoPred) pred_st[in.guard] = St::kLive;
    }
  }
  return stats;
}

OptStats run_standard_pipeline(Program& prog) {
  OptStats total;
  for (int iter = 0; iter < 10; ++iter) {
    OptStats round;
    round += propagate_copies(prog);
    round += fold_constants(prog);
    round += fold_addresses(prog);
    round += eliminate_dead_code(prog);
    total += round;
    if (round.total() == 0) break;
  }
  verify(prog);
  return total;
}

}  // namespace vgpu
