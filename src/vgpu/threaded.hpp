// threaded.hpp - threaded-code execution of decoded straight-line runs.
//
// The batched functional fast path (BlockExec::step_run) used to loop a
// per-instruction `switch (d.op)` over the run (exec_alu). This backend
// compiles each batchable decoded instruction once per program into a
// ThreadedOp - a dense handler index plus operand row offsets premultiplied
// for lane storage - and executes whole runs through a computed-goto
// dispatch loop (GCC/Clang `&&label` token threading), falling back to a
// portable dense-switch loop when the extension is unavailable
// (configure-time: the build defines VGPU_HAVE_COMPUTED_GOTO when the
// probe in src/vgpu/CMakeLists.txt compiles; GCM_PORTABLE_DISPATCH=ON
// forces the fallback).
//
// Both dispatch loops and the legacy exec_alu loop are required to be
// bit-identical in every architectural effect; the handler bodies are the
// exact expressions of the corresponding exec_alu cases, and the
// differential suites (threaded_dispatch_test, fuzz_differential_test,
// fastpath_equivalence_test) compare all of them against the reference
// interpreter.
#pragma once

#include <cstdint>
#include <vector>

#include "vgpu/ir.hpp"

namespace vgpu {

struct DecodedProgram;

/// How executors dispatch converged straight-line runs on the fast path:
/// the legacy per-instruction opcode switch (exec_alu), or the compiled
/// threaded-code loop. Both are bit-identical; kThreaded is the default.
enum class RunDispatch : std::uint8_t { kSwitch, kThreaded };

/// Dense handler set of the threaded executor: exactly the run-eligible
/// opcodes (opclass.hpp), with kMovSpecial split per special register so
/// the special select happens at compile time, not per lane.
enum class THandler : std::uint8_t {
  kFAdd, kFSub, kFMul, kFFma, kFRcp, kFRsqrt, kFNeg, kFAbs, kFMin, kFMax,
  kIAdd, kISub, kIMul, kIMad, kIAddImm, kShl, kShr, kAnd, kOr, kXor,
  kIMin, kIMax, kF2I, kI2F, kMov, kMovImm, kMovParam, kSel,
  kTid, kCtaid, kNtid, kNctaid, kLane, kWarpId, kSmId,
  kCount
};

inline constexpr std::size_t kTHandlerCount =
    static_cast<std::size_t>(THandler::kCount);

/// One compiled instruction. `dst`/`a`/`b`/`c` are register-file row
/// offsets (slot * 32, ready to add to WarpState::regs); `c` doubles as the
/// predicate source index for kSel. Only positions inside a decoded run
/// hold a valid entry.
struct ThreadedOp {
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t imm = 0;
  std::uint32_t h = 0;  ///< THandler index
};

/// The compiled stream, parallel to DecodedProgram::instrs. Immutable after
/// build_threaded and safe to share across threads and launches.
struct ThreadedProgram {
  std::vector<ThreadedOp> ops;
};

/// Per-run execution context: everything a handler can read besides the
/// register file. Parameters are resolved at execution time, never at
/// compile time, so one ThreadedProgram serves launches with different
/// parameter blocks (the decode cache depends on this).
struct ThreadedCtx {
  const std::uint32_t* params = nullptr;
  std::uint32_t block_id = 0;
  std::uint32_t block_threads = 0;
  std::uint32_t grid_blocks = 0;
  std::uint32_t sm_id = 0;
  std::uint32_t warp_index = 0;
  std::uint32_t base_thread = 0;
  std::uint32_t warp_size = 32;
};

/// Compile the batchable instructions of a decoded program. Entries outside
/// runs are left defaulted and must never be executed.
[[nodiscard]] ThreadedProgram build_threaded(const DecodedProgram& dec);

/// Execute `n` compiled instructions on a fully converged warp (`regs` is
/// the warp's lane storage, `preds` its predicate file - read-only: no
/// batchable op writes predicates). Dispatches through computed goto when
/// the build has it, else through the portable loop.
void exec_threaded(const ThreadedOp* ops, std::uint32_t n,
                   std::uint32_t* regs, const std::uint32_t* preds,
                   const ThreadedCtx& ctx);

/// The portable dense-switch twin, always compiled so the fallback is
/// differential-tested even on builds that default to computed goto.
void exec_threaded_portable(const ThreadedOp* ops, std::uint32_t n,
                            std::uint32_t* regs, const std::uint32_t* preds,
                            const ThreadedCtx& ctx);

/// "computed-goto" or "switch": what exec_threaded dispatches through in
/// this build (benchmark/doc reporting).
[[nodiscard]] const char* threaded_dispatch_kind();

}  // namespace vgpu
