// device.hpp - host-side facade over the simulated device.
//
// Mirrors the CUDA runtime surface the paper's measurement protocol uses:
// allocate device buffers, copy host<->device (with a PCIe transfer-time
// model), launch kernels functionally or under the timing model, and read
// back an accumulated host timeline. Fig. 12 measures "from copying the
// data to the device, through the kernel invocation till after copying the
// results back"; Device::timeline_ms() reproduces exactly that window.
//
// Beyond the paper's serial protocol the device exposes async streams
// (stream.hpp): memcpy_*_async / launch_timed_async enqueue stream-ordered
// operations whose *data* effects happen immediately (the simulator
// executes eagerly, in enqueue order) while their *time* is resolved at
// sync() by the shared StreamTimeline critical-path model - copies on the
// DMA engine(s) overlap kernel execution, same-stream operations
// serialize, cross-stream operations order only through events. Because
// effects are eager, cross-stream operations that race on the same memory
// resolve in enqueue order; express real dependencies with events, as the
// double-buffered pipelines do.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vgpu/arch.hpp"
#include "vgpu/executor.hpp"
#include "vgpu/launch.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/stream.hpp"
#include "vgpu/timing.hpp"

namespace vgpu {

class Device {
 public:
  explicit Device(DeviceSpec spec = g80_spec(),
                  std::size_t gmem_bytes = 512u * 1024 * 1024)
      : spec_(std::move(spec)), gmem_(gmem_bytes), async_(spec_.dma_engines) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] DeviceSpec& spec() { return spec_; }
  [[nodiscard]] GlobalMemory& gmem() { return gmem_; }

  [[nodiscard]] Buffer malloc(std::size_t bytes) { return gmem_.alloc(bytes); }

  /// cudaMemcpyToSymbol analogue: write into the 64 KiB constant space.
  void upload_const(std::uint32_t addr, std::span<const std::byte> src) {
    cmem_.write(addr, src);
  }
  [[nodiscard]] const ConstantMemory& constant_memory() const { return cmem_; }

  /// Typed allocation helper.
  template <typename T>
  [[nodiscard]] Buffer malloc_n(std::size_t count) {
    return gmem_.alloc(count * sizeof(T));
  }

  /// Synchronous copies (the paper's serial protocol). The host span must
  /// match the buffer extent exactly; partial copies are rejected (copy
  /// into a sub-Buffer view for a genuine partial transfer).
  void memcpy_h2d(Buffer dst, std::span<const std::byte> src);
  void memcpy_d2h(std::span<std::byte> dst, Buffer src);

  template <typename T>
  [[nodiscard]] Buffer upload(std::span<const T> host) {
    Buffer b = malloc_n<T>(host.size());
    memcpy_h2d(b, std::as_bytes(host));
    return b;
  }

  template <typename T>
  void download(std::span<T> host, Buffer src) {
    memcpy_d2h(std::as_writable_bytes(host), src);
  }

  /// Functional launch: numerical results + event counts, no cycles.
  LaunchStats launch_functional(const Program& prog, const LaunchConfig& cfg,
                                std::span<const std::uint32_t> params,
                                DriverModel driver = DriverModel::kCuda10);

  /// Functional launch with full options; the device's constant memory is
  /// bound automatically when `opt.cmem` is null.
  LaunchStats launch_functional(const Program& prog, const LaunchConfig& cfg,
                                std::span<const std::uint32_t> params,
                                const FunctionalOptions& opt);

  /// Timed launch: adds kernel time + the per-launch driver overhead to the
  /// host timeline.
  LaunchStats launch_timed(const Program& prog, const LaunchConfig& cfg,
                           std::span<const std::uint32_t> params,
                           const TimingOptions& opt = {});

  /// Timed launch as one iteration of an already-resident persistent
  /// kernel: identical simulation (cycles are bit-identical with
  /// launch_timed), but the timeline is charged the kernel time plus one
  /// simulated grid-wide sync (TimingParams::grid_sync_cycles) instead of
  /// the per-launch driver overhead. The single launch overhead of the
  /// resident kernel itself is the caller's to charge once, via
  /// advance_timeline(spec().launch_overhead_ms()).
  LaunchStats launch_timed_resident(const Program& prog,
                                    const LaunchConfig& cfg,
                                    std::span<const std::uint32_t> params,
                                    const TimingOptions& opt = {});

  // ---- async streams (copy/compute overlap; see stream.hpp) ----

  [[nodiscard]] Stream create_stream() { return async_.new_stream(); }
  /// Async copies/launches: data effects are immediate (enqueue order);
  /// the time lands on the timeline at sync(). Size rules match the
  /// synchronous copies.
  void memcpy_h2d_async(Stream s, Buffer dst, std::span<const std::byte> src);
  void memcpy_d2h_async(Stream s, std::span<std::byte> dst, Buffer src);
  /// The returned stats (cycles included) are available immediately and
  /// bit-identical with launch_timed.
  LaunchStats launch_timed_async(Stream s, const Program& prog,
                                 const LaunchConfig& cfg,
                                 std::span<const std::uint32_t> params,
                                 const TimingOptions& opt = {});
  [[nodiscard]] Event record_event(Stream s) { return async_.record_event(s); }
  void wait_event(Stream s, Event e) { async_.wait_event(s, e); }

  /// Complete all pending async work: fold the epoch's critical path into
  /// timeline_ms(), publish the resolved spans (last_sync_spans) and start
  /// a new epoch. Returns the epoch's makespan. Stream handles survive;
  /// event handles do not.
  double sync();
  [[nodiscard]] bool has_pending_async() const {
    return !async_.spans().empty();
  }
  /// Spans resolved by the most recent sync(), for telemetry export.
  [[nodiscard]] const std::vector<AsyncSpan>& last_sync_spans() const {
    return last_sync_spans_;
  }

  /// Accumulated host-visible milliseconds (copies + timed launches),
  /// the paper's end-to-end measurement window.
  [[nodiscard]] double timeline_ms() const { return timeline_ms_; }
  void reset_timeline() { timeline_ms_ = 0.0; }
  /// Charge host-modeled milliseconds (e.g. the one-time launch overhead
  /// of a persistent kernel). Prefer the typed entry points.
  void advance_timeline(double ms);

  /// The device's host<->device copy cost (transfer_ms over this spec).
  [[nodiscard]] double copy_ms(std::size_t bytes) const {
    return transfer_ms(spec_, bytes);
  }

  /// Free all device allocations (buffers become invalid).
  void reset_memory() { gmem_.reset(); }

 private:
  [[nodiscard]] double timed_launch_ms(const Program& prog,
                                       const LaunchConfig& cfg,
                                       std::span<const std::uint32_t> params,
                                       const TimingOptions& opt,
                                       LaunchStats& stats);

  DeviceSpec spec_;
  GlobalMemory gmem_;
  ConstantMemory cmem_;
  double timeline_ms_ = 0.0;
  StreamTimeline async_;
  std::vector<AsyncSpan> last_sync_spans_;
};

}  // namespace vgpu
