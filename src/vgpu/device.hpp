// device.hpp - host-side facade over the simulated device.
//
// Mirrors the CUDA runtime surface the paper's measurement protocol uses:
// allocate device buffers, copy host<->device (with a PCIe transfer-time
// model), launch kernels functionally or under the timing model, and read
// back an accumulated host timeline. Fig. 12 measures "from copying the
// data to the device, through the kernel invocation till after copying the
// results back"; Device::timeline_ms() reproduces exactly that window.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vgpu/arch.hpp"
#include "vgpu/executor.hpp"
#include "vgpu/launch.hpp"
#include "vgpu/memory.hpp"
#include "vgpu/timing.hpp"

namespace vgpu {

class Device {
 public:
  explicit Device(DeviceSpec spec = g80_spec(),
                  std::size_t gmem_bytes = 512u * 1024 * 1024)
      : spec_(std::move(spec)), gmem_(gmem_bytes) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] DeviceSpec& spec() { return spec_; }
  [[nodiscard]] GlobalMemory& gmem() { return gmem_; }

  [[nodiscard]] Buffer malloc(std::size_t bytes) { return gmem_.alloc(bytes); }

  /// cudaMemcpyToSymbol analogue: write into the 64 KiB constant space.
  void upload_const(std::uint32_t addr, std::span<const std::byte> src) {
    cmem_.write(addr, src);
  }
  [[nodiscard]] const ConstantMemory& constant_memory() const { return cmem_; }

  /// Typed allocation helper.
  template <typename T>
  [[nodiscard]] Buffer malloc_n(std::size_t count) {
    return gmem_.alloc(count * sizeof(T));
  }

  void memcpy_h2d(Buffer dst, std::span<const std::byte> src);
  void memcpy_d2h(std::span<std::byte> dst, Buffer src);

  template <typename T>
  [[nodiscard]] Buffer upload(std::span<const T> host) {
    Buffer b = malloc_n<T>(host.size());
    memcpy_h2d(b, std::as_bytes(host));
    return b;
  }

  template <typename T>
  void download(std::span<T> host, Buffer src) {
    memcpy_d2h(std::as_writable_bytes(host), src);
  }

  /// Functional launch: numerical results + event counts, no cycles.
  LaunchStats launch_functional(const Program& prog, const LaunchConfig& cfg,
                                std::span<const std::uint32_t> params,
                                DriverModel driver = DriverModel::kCuda10);

  /// Functional launch with full options; the device's constant memory is
  /// bound automatically when `opt.cmem` is null.
  LaunchStats launch_functional(const Program& prog, const LaunchConfig& cfg,
                                std::span<const std::uint32_t> params,
                                const FunctionalOptions& opt);

  /// Timed launch: adds kernel time to the host timeline.
  LaunchStats launch_timed(const Program& prog, const LaunchConfig& cfg,
                           std::span<const std::uint32_t> params,
                           const TimingOptions& opt = {});

  /// Accumulated host-visible milliseconds (copies + timed launches),
  /// the paper's end-to-end measurement window.
  [[nodiscard]] double timeline_ms() const { return timeline_ms_; }
  void reset_timeline() { timeline_ms_ = 0.0; }

  /// Free all device allocations (buffers become invalid).
  void reset_memory() { gmem_.reset(); }

 private:
  [[nodiscard]] double copy_ms(std::size_t bytes) const;

  DeviceSpec spec_;
  GlobalMemory gmem_;
  ConstantMemory cmem_;
  double timeline_ms_ = 0.0;
};

}  // namespace vgpu
