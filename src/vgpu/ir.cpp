#include "vgpu/ir.hpp"

#include <sstream>

#include "vgpu/launch.hpp"
#include "vgpu/opclass.hpp"

namespace vgpu {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFFma: return "ffma";
    case Opcode::kFRcp: return "frcp";
    case Opcode::kFRsqrt: return "frsqrt";
    case Opcode::kFNeg: return "fneg";
    case Opcode::kFAbs: return "fabs";
    case Opcode::kFMin: return "fmin";
    case Opcode::kFMax: return "fmax";
    case Opcode::kIAdd: return "iadd";
    case Opcode::kISub: return "isub";
    case Opcode::kIMul: return "imul";
    case Opcode::kIMad: return "imad";
    case Opcode::kIAddImm: return "iadd.imm";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kIMin: return "imin";
    case Opcode::kIMax: return "imax";
    case Opcode::kMov: return "mov";
    case Opcode::kMovImm: return "mov.imm";
    case Opcode::kMovSpecial: return "mov.special";
    case Opcode::kMovParam: return "mov.param";
    case Opcode::kI2F: return "i2f";
    case Opcode::kF2I: return "f2i";
    case Opcode::kSetp: return "setp";
    case Opcode::kPAnd: return "pand";
    case Opcode::kPOr: return "por";
    case Opcode::kPNot: return "pnot";
    case Opcode::kSel: return "sel";
    case Opcode::kLdGlobal: return "ld.global";
    case Opcode::kStGlobal: return "st.global";
    case Opcode::kLdShared: return "ld.shared";
    case Opcode::kStShared: return "st.shared";
    case Opcode::kLdConst: return "ld.const";
    case Opcode::kLdTex: return "tex.fetch";
    case Opcode::kLdLocal: return "ld.local";
    case Opcode::kStLocal: return "st.local";
    case Opcode::kBra: return "bra";
    case Opcode::kBraCond: return "bra.cond";
    case Opcode::kExit: return "exit";
    case Opcode::kBar: return "bar.sync";
    case Opcode::kClock: return "clock";
  }
  return "invalid";
}

const char* to_string(Special s) {
  switch (s) {
    case Special::kTid: return "%tid";
    case Special::kCtaid: return "%ctaid";
    case Special::kNtid: return "%ntid";
    case Special::kNctaid: return "%nctaid";
    case Special::kLane: return "%lane";
    case Special::kWarpId: return "%warpid";
    case Special::kSmId: return "%smid";
    case Special::kClock: return "%clock";
  }
  return "%invalid";
}

const char* to_string(CmpOp c) {
  switch (c) {
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
    case CmpOp::kLt: return "lt";
    case CmpOp::kLe: return "le";
    case CmpOp::kGt: return "gt";
    case CmpOp::kGe: return "ge";
  }
  return "??";
}

const char* to_string(Region r) {
  switch (r) {
    case Region::kSetup: return "S";
    case Region::kBlockFetch: return "B";
    case Region::kInner: return "P";
    case Region::kOther: return "other";
  }
  return "?";
}

std::size_t Program::instruction_count() const {
  std::size_t n = 0;
  for (const Block& b : blocks) n += b.instrs.size();
  return n;
}

std::size_t Program::block_instruction_count(BlockId b) const {
  return blocks.at(b).instrs.size();
}

const char* to_string(InstrClass c) {
  switch (c) {
    case InstrClass::kFloatAlu: return "float-alu";
    case InstrClass::kIntAlu: return "int-alu";
    case InstrClass::kGlobalMemory: return "global-mem";
    case InstrClass::kSharedMemory: return "shared-mem";
    case InstrClass::kControl: return "control";
    case InstrClass::kOther: return "other";
  }
  return "?";
}

void Program::refresh_virtual_layout() {
  reg_base.resize(regs.size());
  std::uint32_t cursor = 0;
  for (std::size_t r = 0; r < regs.size(); ++r) {
    reg_base[r] = cursor;
    cursor += regs[r].width;
  }
  reg_file_size = cursor;
  allocated = false;
  num_phys_regs = 0;
}

namespace {

void print_operand(std::ostream& os, const Operand& o) {
  if (!o.valid()) {
    os << "_";
    return;
  }
  os << "r" << o.reg;
  if (o.comp != 0) os << "." << static_cast<int>(o.comp);
}

}  // namespace

std::string disassemble(const Instruction& in) {
  std::ostringstream os;
  if (in.guard != kNoPred) {
    os << "@" << (in.guard_negated ? "!" : "") << "p" << in.guard << " ";
  }
  os << to_string(in.op);
  if (in.is_memory()) os << "." << width_bytes(in.width) * 8 << "b";
  if (in.op == Opcode::kSetp) {
    os << "." << to_string(in.cmp) << (in.cmp_is_float ? ".f32" : ".u32");
  }
  os << " ";
  switch (in.op) {
    case Opcode::kLdGlobal:
    case Opcode::kLdShared:
    case Opcode::kLdConst:
    case Opcode::kLdTex:
    case Opcode::kLdLocal:
      print_operand(os, in.dst);
      os << ", [";
      print_operand(os, in.src[0]);
      os << "+" << in.imm << "]";
      break;
    case Opcode::kStGlobal:
    case Opcode::kStShared:
    case Opcode::kStLocal:
      os << "[";
      print_operand(os, in.src[0]);
      os << "+" << in.imm << "], ";
      print_operand(os, in.src[1]);
      break;
    case Opcode::kMovImm:
      print_operand(os, in.dst);
      os << ", 0x" << std::hex << in.imm << std::dec;
      break;
    case Opcode::kMovSpecial:
      print_operand(os, in.dst);
      os << ", " << to_string(static_cast<Special>(in.imm));
      break;
    case Opcode::kMovParam:
      print_operand(os, in.dst);
      os << ", param[" << in.imm << "]";
      break;
    case Opcode::kIAddImm:
      print_operand(os, in.dst);
      os << ", ";
      print_operand(os, in.src[0]);
      os << ", " << in.imm;
      break;
    case Opcode::kSetp:
      os << "p" << in.pdst << ", ";
      print_operand(os, in.src[0]);
      os << ", ";
      if (in.src[1].valid()) {
        print_operand(os, in.src[1]);
      } else {
        os << in.imm;
      }
      break;
    case Opcode::kPAnd:
    case Opcode::kPOr:
      os << "p" << in.pdst << ", p" << in.psrc0 << ", p" << in.psrc1;
      break;
    case Opcode::kPNot:
      os << "p" << in.pdst << ", p" << in.psrc0;
      break;
    case Opcode::kSel:
      print_operand(os, in.dst);
      os << ", p" << in.psrc0 << ", ";
      print_operand(os, in.src[0]);
      os << ", ";
      print_operand(os, in.src[1]);
      break;
    case Opcode::kBra:
      os << "B" << in.target;
      break;
    case Opcode::kBraCond:
      os << (in.branch_if_false ? "!" : "") << "p" << in.psrc0 << ", B"
         << in.target << ", else B" << in.target2 << ", reconv B" << in.reconv;
      break;
    case Opcode::kExit:
    case Opcode::kBar:
      break;
    default: {
      print_operand(os, in.dst);
      bool first = true;
      for (const Operand& s : in.src) {
        if (!s.valid()) break;
        os << (first ? ", " : ", ");
        first = false;
        print_operand(os, s);
      }
      break;
    }
  }
  return std::move(os).str();
}

std::string disassemble(const Program& prog) {
  std::ostringstream os;
  os << ".kernel " << prog.name << "  (params=" << prog.num_params
     << ", vregs=" << prog.regs.size() << ", preds=" << prog.num_preds
     << ", shared=" << prog.shared_bytes << "B";
  if (prog.local_bytes != 0) os << ", local=" << prog.local_bytes << "B";
  if (prog.allocated) os << ", phys_regs=" << prog.num_phys_regs;
  os << ")\n";
  for (BlockId b = 0; b < prog.blocks.size(); ++b) {
    os << "B" << b << ":   // region " << to_string(prog.blocks[b].region)
       << "\n";
    for (const Instruction& in : prog.blocks[b].instrs) {
      os << "    " << disassemble(in) << "\n";
    }
  }
  return std::move(os).str();
}

}  // namespace vgpu
