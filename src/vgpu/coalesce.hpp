// coalesce.hpp - global-memory coalescing models per CUDA generation.
//
// The paper measures the same kernels under CUDA 1.0, 1.1 and 2.2 and finds
// the drivers handle unoptimized access patterns very differently (its
// Fig. 10). We model three request->transaction policies:
//
//  * kCuda10 - the strict G80 half-warp rules from the CUDA 1.0/1.1
//    programming guide: a half-warp's accesses of width 4/8/16 bytes
//    coalesce into one 64B / one 128B / two 128B transactions only if
//    lane k addresses exactly word k of a properly aligned segment;
//    otherwise every active lane issues its own transaction.
//  * kCuda11 - the anomalous behaviour the paper observed but could not
//    explain: modeled as driver-side merging of the half-warp's addresses
//    into minimal 128-byte segments, with a higher fixed per-segment issue
//    cost. This yields the "completely different", flat layout-sensitivity
//    pattern of Fig. 10 (documented assumption; see DESIGN.md section 5).
//  * kCuda22 - the CC 1.2-style minimal-segment rules: addresses are
//    covered by 128B segments which shrink to 64B/32B when all used
//    addresses fall into one half of the segment.
//
// The same engine is reused analytically by layout::analyzer to reproduce
// the transaction counts of the paper's Figs. 3, 5, 7 and 9.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "vgpu/arch.hpp"
#include "vgpu/ir.hpp"

namespace vgpu {

/// One DRAM transaction produced by the coalescer.
struct Transaction {
  std::uint32_t base = 0;   ///< byte address, aligned to `bytes`
  std::uint32_t bytes = 0;  ///< 4..128
};

/// One half-warp memory request: per-lane byte addresses indexed by lane
/// position within the half-warp, plus an active-lane mask (bit k = lane k).
/// Addresses of inactive lanes are ignored.
struct MemRequest {
  std::span<const std::uint32_t> lane_addrs;  ///< size = half-warp lanes (16)
  std::uint32_t active = 0xFFFFu;
  MemWidth width = MemWidth::kW32;
  bool is_store = false;
};

struct CoalesceResult {
  std::vector<Transaction> transactions;
  bool coalesced = false;  ///< whether the strict fast path was hit

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const Transaction& t : transactions) n += t.bytes;
    return n;
  }
};

/// Computes the DRAM transactions for one half-warp request under the given
/// driver model. Deterministic; the out-parameter overload lets hot callers
/// reuse the transaction vector.
[[nodiscard]] CoalesceResult coalesce(const MemRequest& req, DriverModel model);
void coalesce(const MemRequest& req, DriverModel model, CoalesceResult& out);

/// True if the request satisfies the strict CUDA 1.0 half-warp coalescing
/// conditions (active lane k addresses exactly word k of a segment aligned
/// to 16 * width bytes).
[[nodiscard]] bool is_strictly_coalesced(const MemRequest& req);

}  // namespace vgpu
