// stream.hpp - asynchronous streams and the copy/compute overlap model.
//
// The paper's Fig. 12 protocol is strictly serial: copy in, launch, copy
// out, every millisecond accounted on one host timeline. A production port
// overlaps the PCIe copies with kernel execution ("Memory Layouts for
// GPU-Data Transfer Buffering in SPH", PAPERS.md). StreamTimeline is the
// one shared model of that overlap: stream-ordered operations are placed
// greedily, in enqueue order, onto the device's engines -
//
//   * all kernels execute on the single compute engine (G80-era devices
//     run one kernel at a time, so kernels serialize even across streams);
//   * copies execute on one of `dma_engines` DMA engines (the earliest
//     available; ties break to the lowest index), so a copy can overlap a
//     kernel but two copies contend when the device has one engine;
//   * operations on the same stream serialize in enqueue order;
//   * operations on different streams only order through events
//     (record_event / wait_event) and engine contention.
//
// Greedy in-order placement mirrors what the CUDA runtime's per-engine
// FIFOs actually do and keeps the schedule deterministic. Device (device.hpp)
// resolves its async API through a StreamTimeline; the fig12 bench feeds
// the same class extrapolated durations - both therefore share one
// critical-path model, which is the point (ISSUE 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vgpu {

/// Opaque stream handle. Stream {0} is the default stream and always
/// exists; it is an ordinary stream (no legacy-default-stream barrier
/// semantics).
struct Stream {
  std::uint32_t id = 0;
};

/// Opaque event handle, recorded on one stream and waitable from others.
/// Events belong to the sync epoch they were recorded in: Device::sync()
/// invalidates them.
struct Event {
  std::uint32_t id = 0;
};

/// One resolved operation: what it occupied and when, in milliseconds
/// relative to the epoch start (the previous sync).
struct AsyncSpan {
  enum class Kind : std::uint8_t { kKernel, kH2D, kD2H };
  Kind kind = Kind::kKernel;
  std::uint32_t stream = 0;
  std::uint32_t engine = 0;  ///< 0 = compute engine, 1.. = DMA engine index
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::uint64_t bytes = 0;  ///< copies only
  std::string label;
};

[[nodiscard]] const char* to_string(AsyncSpan::Kind k);

class StreamTimeline {
 public:
  /// `dma_engines` is the DeviceSpec knob: how many host<->device copies
  /// can be in flight at once (each still overlapping the compute engine).
  explicit StreamTimeline(std::uint32_t dma_engines = 1);

  [[nodiscard]] Stream new_stream();
  [[nodiscard]] std::uint32_t stream_count() const {
    return static_cast<std::uint32_t>(stream_ready_.size());
  }
  [[nodiscard]] std::uint32_t dma_engines() const {
    return static_cast<std::uint32_t>(dma_ready_.size());
  }

  /// Enqueue one operation. Durations are supplied by the caller (Device
  /// derives them from its DeviceSpec transfer/kernel models); the timeline
  /// only decides *placement*. Placement is resolved eagerly, so spans()
  /// and makespan() are always current.
  void push_kernel(Stream s, double ms, std::string label = "kernel");
  void push_copy(Stream s, AsyncSpan::Kind kind, std::uint64_t bytes,
                 double ms, std::string label = {});

  /// Event time = completion of everything enqueued on `s` so far.
  [[nodiscard]] Event record_event(Stream s);
  /// The next operation on `s` starts no earlier than the event time.
  void wait_event(Stream s, Event e);

  /// Completion time of everything enqueued so far (the critical path).
  [[nodiscard]] double makespan() const { return makespan_; }
  /// Completion time of one stream's work.
  [[nodiscard]] double stream_ready(Stream s) const;
  [[nodiscard]] const std::vector<AsyncSpan>& spans() const { return spans_; }

  /// Start a new epoch: forget spans, events and engine/stream clocks.
  /// Stream handles stay valid (their clocks reset to zero); event handles
  /// do not.
  void clear();

 private:
  double& ready_of(Stream s);
  void place(AsyncSpan span, Stream s, double ms);

  std::vector<double> stream_ready_;  // [stream id]
  double compute_ready_ = 0.0;
  std::vector<double> dma_ready_;  // [dma engine]
  std::vector<double> event_time_;
  std::vector<AsyncSpan> spans_;
  double makespan_ = 0.0;
};

/// Steady-state per-step milliseconds of the canonical double-buffered
/// pipeline over the stream model: step i uploads buffer i%2 on an upload
/// stream, runs the kernel on a compute stream once the upload's event
/// fires, and downloads the result on a third stream, with event edges for
/// buffer reuse (upload i+2 waits until kernel i stops reading the image;
/// kernel i+2 waits until download i drained the result buffer). With one
/// DMA engine this converges to max(kernel_ms, h2d_ms + d2h_ms): the copy
/// time is fully hidden whenever the kernel dominates. Computed by running
/// the pipeline, not by that closed form - the unit tests pin the two
/// against each other.
[[nodiscard]] double pipelined_step_ms(std::uint32_t dma_engines,
                                       double h2d_ms, double kernel_ms,
                                       double d2h_ms);

}  // namespace vgpu
