#include "vgpu/interp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "vgpu/check.hpp"
#include "vgpu/decode.hpp"
#include "vgpu/memo.hpp"
#include "vgpu/opclass.hpp"
#include "vgpu/threaded.hpp"
#include "vgpu/traces.hpp"

namespace vgpu {

namespace {

[[nodiscard]] float as_f32(std::uint32_t v) { return std::bit_cast<float>(v); }
[[nodiscard]] std::uint32_t as_u32(float v) { return std::bit_cast<std::uint32_t>(v); }

// Both interpreter paths and the threaded backend evaluate kSetp through
// the one shared eval_cmp (opclass.hpp); these aliases keep the call sites
// below readable.
[[nodiscard]] bool cmp_u32(CmpOp op, std::uint32_t a, std::uint32_t b) {
  return eval_cmp(op, a, b);
}

[[nodiscard]] bool cmp_f32(CmpOp op, float a, float b) {
  return eval_cmp(op, a, b);
}

}  // namespace

BlockExec::BlockExec(const Program& prog, const DeviceSpec& spec,
                     GlobalMemory& gmem, const BlockParams& bp,
                     const DecodedProgram* dec)
    : prog_(prog),
      spec_(spec),
      gmem_(gmem),
      bp_(bp),
      smem_(std::max(prog.shared_bytes, 4u), spec.shared_mem_banks),
      dec_(dec) {
  VGPU_EXPECTS_MSG(bp.cfg.block_threads % spec.warp_size == 0,
                   "block size must be a warp multiple");
  VGPU_EXPECTS_MSG(bp.cfg.block_threads <= spec.max_threads_per_block,
                   "block size exceeds device limit");
  VGPU_EXPECTS_MSG(prog.reg_file_size > 0 || prog.regs.empty(),
                   "program has no register layout (finish/allocate first)");
  full_mask_ = spec.warp_size >= 32 ? kFullMask : ((1u << spec.warp_size) - 1u);
  local_words_ = (prog.local_bytes + 3) / 4;

  const std::uint32_t warps = bp.cfg.block_threads / spec.warp_size;
  const std::size_t reg_words = static_cast<std::size_t>(prog.reg_file_size) * 32u;
  const std::size_t local_words = static_cast<std::size_t>(local_words_) * 32u;
  reg_arena_.assign(reg_words * warps, 0u);
  pred_arena_.assign(static_cast<std::size_t>(prog.num_preds) * warps, 0u);
  local_arena_.assign(local_words * warps, 0u);

  warps_.resize(warps);
  for (std::uint32_t w = 0; w < warps; ++w) {
    WarpState& ws = warps_[w];
    ws.index = w;
    ws.regs = reg_arena_.data() + reg_words * w;
    ws.preds = pred_arena_.data() + static_cast<std::size_t>(prog.num_preds) * w;
    ws.local = local_arena_.data() + local_words * w;
  }
}

void BlockExec::reset(const BlockParams& bp) {
  VGPU_EXPECTS_MSG(bp.cfg.block_threads == bp_.cfg.block_threads,
                   "reset must keep the block shape");
  bp_ = bp;
  smem_.clear();
  std::fill(reg_arena_.begin(), reg_arena_.end(), 0u);
  std::fill(pred_arena_.begin(), pred_arena_.end(), 0u);
  std::fill(local_arena_.begin(), local_arena_.end(), 0u);
  for (WarpState& ws : warps_) {
    ws.block = 0;
    ws.ip = 0;
    ws.active = kFullMask;
    ws.stack.clear();
    ws.at_barrier = false;
    ws.done = false;
    ws.ready_cycle = 0;
    ws.issued = 0;
  }
}

bool BlockExec::all_done() const {
  for (const WarpState& w : warps_) {
    if (!w.done) return false;
  }
  return true;
}

bool BlockExec::barrier_releasable() const {
  bool any_waiting = false;
  for (const WarpState& w : warps_) {
    if (w.done) continue;
    if (!w.at_barrier) return false;
    any_waiting = true;
  }
  return any_waiting;
}

void BlockExec::release_barrier() {
  for (WarpState& w : warps_) w.at_barrier = false;
}

void BlockExec::park(WarpState& ws, BlockId reconv, Mask m) {
  if (!ws.stack.empty() && ws.stack.back().reconv == reconv) {
    ws.stack.back().parked |= m;
  } else {
    ws.stack.push_back(DivEntry{reconv, m, 0, kNoBlock});
  }
}

const Instruction* BlockExec::peek(std::uint32_t w) const {
  const WarpState& ws = warps_[w];
  if (ws.done || ws.at_barrier) return nullptr;
  return &prog_.blocks[ws.block].instrs[ws.ip];
}

const DecodedInstr* BlockExec::peek_decoded(std::uint32_t w) const {
  const WarpState& ws = warps_[w];
  if (ws.done || ws.at_barrier) return nullptr;
  return &dec_->at(ws.block, ws.ip);
}

void BlockExec::transfer(WarpState& ws, BlockId next) {
  while (!ws.stack.empty() && ws.stack.back().reconv == next) {
    DivEntry& top = ws.stack.back();
    top.parked |= ws.active;
    if (top.pending_mask != 0) {
      ws.active = top.pending_mask;
      next = top.pending_block;
      top.pending_mask = 0;
      continue;
    }
    ws.active = top.parked;
    ws.stack.pop_back();
  }
  ws.block = next;
  ws.ip = 0;
}

StepResult BlockExec::step(std::uint32_t w, std::uint64_t now) {
  return dec_ != nullptr ? step_fast(w, now) : step_ref(w, now);
}

StepResult BlockExec::step_ref(std::uint32_t w, std::uint64_t now) {
  WarpState& ws = warps_[w];
  VGPU_EXPECTS_MSG(!ws.done, "stepping a finished warp");
  VGPU_EXPECTS_MSG(!ws.at_barrier, "stepping a warp parked at a barrier");
  const Block& blk = prog_.blocks[ws.block];
  const Instruction& in = blk.instrs[ws.ip];

  StepResult res;
  res.region = blk.region;
  res.op = in.op;
  ++ws.issued;

  Mask exec = ws.active;
  if (in.guard != kNoPred) {
    const Mask g = ws.preds[in.guard];
    exec &= in.guard_negated ? ~g : g;
  }

  const std::uint32_t warp_size = spec_.warp_size;
  const std::uint32_t base_thread = ws.index * warp_size;

  auto for_lanes = [&](auto&& fn) {
    for (std::uint32_t lane = 0; lane < warp_size; ++lane) {
      if (exec & (1u << lane)) fn(lane);
    }
  };

  switch (in.op) {
    // ---- f32 -------------------------------------------------------------
    case Opcode::kFAdd:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            as_u32(as_f32(lane_reg(ws, in.src[0], l)) + as_f32(lane_reg(ws, in.src[1], l)));
      });
      break;
    case Opcode::kFSub:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            as_u32(as_f32(lane_reg(ws, in.src[0], l)) - as_f32(lane_reg(ws, in.src[1], l)));
      });
      break;
    case Opcode::kFMul:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            as_u32(as_f32(lane_reg(ws, in.src[0], l)) * as_f32(lane_reg(ws, in.src[1], l)));
      });
      break;
    case Opcode::kFFma:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            as_u32(as_f32(lane_reg(ws, in.src[0], l)) * as_f32(lane_reg(ws, in.src[1], l)) +
                   as_f32(lane_reg(ws, in.src[2], l)));
      });
      break;
    case Opcode::kFRcp:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = as_u32(1.0f / as_f32(lane_reg(ws, in.src[0], l)));
      });
      break;
    case Opcode::kFRsqrt:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            as_u32(1.0f / std::sqrt(as_f32(lane_reg(ws, in.src[0], l))));
      });
      break;
    case Opcode::kFNeg:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = as_u32(-as_f32(lane_reg(ws, in.src[0], l)));
      });
      break;
    case Opcode::kFAbs:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = as_u32(std::fabs(as_f32(lane_reg(ws, in.src[0], l))));
      });
      break;
    case Opcode::kFMin:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = as_u32(std::fmin(as_f32(lane_reg(ws, in.src[0], l)),
                                                   as_f32(lane_reg(ws, in.src[1], l))));
      });
      break;
    case Opcode::kFMax:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = as_u32(std::fmax(as_f32(lane_reg(ws, in.src[0], l)),
                                                   as_f32(lane_reg(ws, in.src[1], l))));
      });
      break;

    // ---- u32 -------------------------------------------------------------
    case Opcode::kIAdd:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) + lane_reg(ws, in.src[1], l);
      });
      break;
    case Opcode::kISub:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) - lane_reg(ws, in.src[1], l);
      });
      break;
    case Opcode::kIMul:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) * lane_reg(ws, in.src[1], l);
      });
      break;
    case Opcode::kIMad:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) * lane_reg(ws, in.src[1], l) +
                                  lane_reg(ws, in.src[2], l);
      });
      break;
    case Opcode::kIAddImm:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) + in.imm;
      });
      break;
    case Opcode::kShl:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l)
                                  << (lane_reg(ws, in.src[1], l) & 31u);
      });
      break;
    case Opcode::kShr:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            lane_reg(ws, in.src[0], l) >> (lane_reg(ws, in.src[1], l) & 31u);
      });
      break;
    case Opcode::kAnd:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) & lane_reg(ws, in.src[1], l);
      });
      break;
    case Opcode::kOr:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) | lane_reg(ws, in.src[1], l);
      });
      break;
    case Opcode::kXor:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l) ^ lane_reg(ws, in.src[1], l);
      });
      break;
    case Opcode::kIMin:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            std::min(lane_reg(ws, in.src[0], l), lane_reg(ws, in.src[1], l));
      });
      break;
    case Opcode::kIMax:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            std::max(lane_reg(ws, in.src[0], l), lane_reg(ws, in.src[1], l));
      });
      break;

    // ---- moves / conversions ----------------------------------------------
    case Opcode::kMov:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = lane_reg(ws, in.src[0], l);
      });
      break;
    case Opcode::kMovImm:
      for_lanes([&](std::uint32_t l) { lane_reg(ws, in.dst, l) = in.imm; });
      break;
    case Opcode::kMovParam:
      for_lanes([&](std::uint32_t l) { lane_reg(ws, in.dst, l) = bp_.params[in.imm]; });
      break;
    case Opcode::kMovSpecial: {
      const auto s = static_cast<Special>(in.imm);
      for_lanes([&](std::uint32_t l) {
        std::uint32_t v = 0;
        switch (s) {
          case Special::kTid: v = base_thread + l; break;
          case Special::kCtaid: v = bp_.block_id; break;
          case Special::kNtid: v = bp_.cfg.block_threads; break;
          case Special::kNctaid: v = bp_.cfg.grid_blocks; break;
          case Special::kLane: v = l; break;
          case Special::kWarpId: v = ws.index; break;
          case Special::kSmId: v = bp_.sm_id; break;
          case Special::kClock: v = static_cast<std::uint32_t>(now); break;
        }
        lane_reg(ws, in.dst, l) = v;
      });
      break;
    }
    case Opcode::kClock:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = static_cast<std::uint32_t>(now);
      });
      break;
    case Opcode::kI2F:
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) =
            as_u32(static_cast<float>(lane_reg(ws, in.src[0], l)));
      });
      break;
    case Opcode::kF2I:
      for_lanes([&](std::uint32_t l) {
        const float f = as_f32(lane_reg(ws, in.src[0], l));
        lane_reg(ws, in.dst, l) =
            f <= 0.0f ? 0u : static_cast<std::uint32_t>(f);
      });
      break;

    // ---- predicates --------------------------------------------------------
    case Opcode::kSetp: {
      Mask result = 0;
      const bool has_reg_b = in.src[1].valid();
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t a = lane_reg(ws, in.src[0], l);
        const std::uint32_t b = has_reg_b ? lane_reg(ws, in.src[1], l) : in.imm;
        const bool t = in.cmp_is_float ? cmp_f32(in.cmp, as_f32(a), as_f32(b))
                                       : cmp_u32(in.cmp, a, b);
        if (t) result |= 1u << l;
      });
      ws.preds[in.pdst] = (ws.preds[in.pdst] & ~exec) | (result & exec);
      break;
    }
    case Opcode::kPAnd:
      ws.preds[in.pdst] = (ws.preds[in.pdst] & ~exec) |
                          (ws.preds[in.psrc0] & ws.preds[in.psrc1] & exec);
      break;
    case Opcode::kPOr:
      ws.preds[in.pdst] = (ws.preds[in.pdst] & ~exec) |
                          ((ws.preds[in.psrc0] | ws.preds[in.psrc1]) & exec);
      break;
    case Opcode::kPNot:
      ws.preds[in.pdst] =
          (ws.preds[in.pdst] & ~exec) | (~ws.preds[in.psrc0] & exec);
      break;
    case Opcode::kSel: {
      const Mask p = ws.preds[in.psrc0];
      for_lanes([&](std::uint32_t l) {
        lane_reg(ws, in.dst, l) = (p & (1u << l)) ? lane_reg(ws, in.src[0], l)
                                                  : lane_reg(ws, in.src[1], l);
      });
      break;
    }

    // ---- memory -------------------------------------------------------------
    case Opcode::kLdGlobal:
    case Opcode::kStGlobal: {
      res.kind = StepResult::Kind::kGlobal;
      res.width = in.width;
      res.is_store = in.op == Opcode::kStGlobal;
      res.mem_mask = exec;
      const std::uint32_t words = width_words(in.width);
      const std::uint32_t wbytes = width_bytes(in.width);
      const bool has_base = in.src[0].valid();
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t addr =
            (has_base ? lane_reg(ws, in.src[0], l) : 0u) + in.imm;
        VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned global access");
        res.lane_addrs[l] = addr;
        if (res.is_store) {
          for (std::uint32_t c = 0; c < words; ++c) {
            gmem_.store_u32(addr + 4u * c,
                            lane_reg(ws, in.src[1], l, static_cast<std::uint8_t>(c)));
          }
        } else {
          for (std::uint32_t c = 0; c < words; ++c) {
            lane_reg(ws, in.dst, l, static_cast<std::uint8_t>(c)) =
                gmem_.load_u32(addr + 4u * c);
          }
        }
      });
      break;
    }
    case Opcode::kLdConst: {
      res.kind = StepResult::Kind::kConst;
      res.width = in.width;
      res.mem_mask = exec;
      VGPU_EXPECTS_MSG(bp_.cmem != nullptr, "kernel reads constant memory but none bound");
      const std::uint32_t words = width_words(in.width);
      const bool has_base = in.src[0].valid();
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t addr =
            (has_base ? lane_reg(ws, in.src[0], l) : 0u) + in.imm;
        res.lane_addrs[l] = addr;
        for (std::uint32_t c = 0; c < words; ++c) {
          lane_reg(ws, in.dst, l, static_cast<std::uint8_t>(c)) =
              bp_.cmem->load_u32(addr + 4u * c);
        }
      });
      break;
    }
    case Opcode::kLdTex: {
      res.kind = StepResult::Kind::kTex;
      res.width = in.width;
      res.mem_mask = exec;
      const std::uint32_t words = width_words(in.width);
      const std::uint32_t wbytes = width_bytes(in.width);
      const bool has_base = in.src[0].valid();
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t addr =
            (has_base ? lane_reg(ws, in.src[0], l) : 0u) + in.imm;
        VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned texture fetch");
        res.lane_addrs[l] = addr;
        for (std::uint32_t c = 0; c < words; ++c) {
          lane_reg(ws, in.dst, l, static_cast<std::uint8_t>(c)) =
              gmem_.load_u32(addr + 4u * c);
        }
      });
      break;
    }
    case Opcode::kLdLocal:
    case Opcode::kStLocal: {
      res.kind = StepResult::Kind::kLocal;
      res.width = in.width;
      res.is_store = in.op == Opcode::kStLocal;
      res.mem_mask = exec;
      const std::uint32_t word = in.imm / 4;
      VGPU_EXPECTS_MSG(in.imm % 4 == 0 && word < local_words_,
                       "local access out of frame");
      for_lanes([&](std::uint32_t l) {
        if (res.is_store) {
          ws.local[static_cast<std::size_t>(word) * 32u + l] =
              lane_reg(ws, in.src[1], l);
        } else {
          lane_reg(ws, in.dst, l) =
              ws.local[static_cast<std::size_t>(word) * 32u + l];
        }
      });
      break;
    }
    case Opcode::kLdShared:
    case Opcode::kStShared: {
      res.kind = StepResult::Kind::kShared;
      res.width = in.width;
      res.is_store = in.op == Opcode::kStShared;
      res.mem_mask = exec;
      const std::uint32_t words = width_words(in.width);
      const std::uint32_t wbytes = width_bytes(in.width);
      const bool has_base = in.src[0].valid();
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t addr =
            (has_base ? lane_reg(ws, in.src[0], l) : 0u) + in.imm;
        VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned shared access");
        res.lane_addrs[l] = addr;
        if (res.is_store) {
          for (std::uint32_t c = 0; c < words; ++c) {
            smem_.store_u32(addr + 4u * c,
                            lane_reg(ws, in.src[1], l, static_cast<std::uint8_t>(c)));
          }
        } else {
          for (std::uint32_t c = 0; c < words; ++c) {
            lane_reg(ws, in.dst, l, static_cast<std::uint8_t>(c)) =
                smem_.load_u32(addr + 4u * c);
          }
        }
      });
      // Serialization degree: max over the half-warps; all word accesses of
      // a wide load are presented to the banks together (adjacent banks
      // serve a 128-bit broadcast in parallel).
      res.shared_conflict_degree = warp_bank_conflict_degree(
          std::span<const std::uint32_t>(res.lane_addrs.data(), warp_size),
          exec, words, spec_.half_warp, spec_.shared_mem_banks);
      break;
    }

    // ---- control ---------------------------------------------------------------
    case Opcode::kBar:
      res.kind = StepResult::Kind::kBarrier;
      ws.at_barrier = true;
      ++ws.ip;
      return res;
    case Opcode::kExit:
      res.kind = StepResult::Kind::kExit;
      VGPU_EXPECTS_MSG(ws.stack.empty(), "exit with non-empty divergence stack");
      ws.done = true;
      return res;
    case Opcode::kBra:
      transfer(ws, in.target);
      return res;
    case Opcode::kBraCond: {
      Mask p = ws.preds[in.psrc0];
      if (in.branch_if_false) p = ~p;
      const Mask taken = ws.active & p;
      BlockId next;
      if (taken == ws.active) {
        next = in.target;
      } else if (taken == 0) {
        next = in.target2;
      } else {
        res.divergent_branch = true;
        const BlockId r = in.reconv;
        if (in.target == r) {
          park(ws, r, taken);
          ws.active &= ~taken;
          next = in.target2;
        } else if (in.target2 == r) {
          park(ws, r, ws.active & ~taken);
          ws.active = taken;
          next = in.target;
        } else {
          ws.stack.push_back(DivEntry{r, 0, ws.active & ~taken, in.target2});
          ws.active = taken;
          next = in.target;
        }
      }
      transfer(ws, next);
      return res;
    }
  }

  ++ws.ip;
  return res;
}

// The fast path: same architectural semantics as step_ref, dispatched off
// the pre-decoded stream. Register accesses go through row pointers hoisted
// out of the lane loop (slot arithmetic done once per instruction, not per
// lane), and a converged warp skips per-lane mask tests entirely. Any
// observable divergence from step_ref is a bug; the differential fuzz and
// real-kernel equivalence tests compare both paths bit for bit.
StepResult BlockExec::step_fast(std::uint32_t w, std::uint64_t now) {
  WarpState& ws = warps_[w];
  VGPU_EXPECTS_MSG(!ws.done, "stepping a finished warp");
  VGPU_EXPECTS_MSG(!ws.at_barrier, "stepping a warp parked at a barrier");
  const DecodedInstr& d = dec_->at(ws.block, ws.ip);

  StepResult res;
  res.kind = d.kind;
  res.region = d.region;
  res.op = d.op;
  ++ws.issued;

  Mask exec = ws.active;
  if (d.guard != kNoPred) {
    const Mask g = ws.preds[d.guard];
    exec &= d.guard_negated ? ~g : g;
  }

  const std::uint32_t warp_size = spec_.warp_size;
  const std::uint32_t base_thread = ws.index * warp_size;
  std::uint32_t* const R = ws.regs;
  auto row = [&](std::uint32_t s) -> std::uint32_t* { return R + s * 32u; };

  // Converged warps take the unmasked loop; the mask test per lane is the
  // single hottest branch in the interpreter.
  const bool converged = (exec & full_mask_) == full_mask_;
  auto for_lanes = [&](auto&& fn) {
    if (converged) {
      for (std::uint32_t lane = 0; lane < warp_size; ++lane) fn(lane);
    } else {
      for (std::uint32_t lane = 0; lane < warp_size; ++lane) {
        if (exec & (1u << lane)) fn(lane);
      }
    }
  };

  switch (d.op) {
    // ---- memory -------------------------------------------------------------
    case Opcode::kLdGlobal:
    case Opcode::kStGlobal: {
      res.width = d.width;
      res.is_store = d.is_store;
      res.mem_mask = exec;
      const std::uint32_t words = d.width_words;
      const std::uint32_t wbytes = d.width_bytes;
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      const std::uint32_t imm = d.imm;
      if (d.is_store) {
        const std::uint32_t* const v = row(d.src_slot[1]);
        for_lanes([&](std::uint32_t l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned global access");
          res.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            gmem_.store_u32(addr + 4u * c, v[c * 32u + l]);
          }
        });
      } else {
        std::uint32_t* const o = row(d.dst_slot);
        for_lanes([&](std::uint32_t l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned global access");
          res.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            o[c * 32u + l] = gmem_.load_u32(addr + 4u * c);
          }
        });
      }
      break;
    }
    case Opcode::kLdConst: {
      res.width = d.width;
      res.mem_mask = exec;
      VGPU_EXPECTS_MSG(bp_.cmem != nullptr, "kernel reads constant memory but none bound");
      const std::uint32_t words = d.width_words;
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      std::uint32_t* const o = row(d.dst_slot);
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
        res.lane_addrs[l] = addr;
        for (std::uint32_t c = 0; c < words; ++c) {
          o[c * 32u + l] = bp_.cmem->load_u32(addr + 4u * c);
        }
      });
      break;
    }
    case Opcode::kLdTex: {
      res.width = d.width;
      res.mem_mask = exec;
      const std::uint32_t words = d.width_words;
      const std::uint32_t wbytes = d.width_bytes;
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      std::uint32_t* const o = row(d.dst_slot);
      for_lanes([&](std::uint32_t l) {
        const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
        VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned texture fetch");
        res.lane_addrs[l] = addr;
        for (std::uint32_t c = 0; c < words; ++c) {
          o[c * 32u + l] = gmem_.load_u32(addr + 4u * c);
        }
      });
      break;
    }
    case Opcode::kLdLocal:
    case Opcode::kStLocal: {
      res.width = d.width;
      res.is_store = d.is_store;
      res.mem_mask = exec;
      const std::uint32_t word = d.imm / 4;
      VGPU_EXPECTS_MSG(d.imm % 4 == 0 && word < local_words_,
                       "local access out of frame");
      std::uint32_t* const frame = ws.local + static_cast<std::size_t>(word) * 32u;
      if (d.is_store) {
        const std::uint32_t* const v = row(d.src_slot[1]);
        for_lanes([&](std::uint32_t l) { frame[l] = v[l]; });
      } else {
        std::uint32_t* const o = row(d.dst_slot);
        for_lanes([&](std::uint32_t l) { o[l] = frame[l]; });
      }
      break;
    }
    case Opcode::kLdShared:
    case Opcode::kStShared: {
      res.width = d.width;
      res.is_store = d.is_store;
      res.mem_mask = exec;
      const std::uint32_t words = d.width_words;
      const std::uint32_t wbytes = d.width_bytes;
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      if (converged && has_base && !d.is_store) {
        // Converged loads (the tile kernels' inner loop) skip the per-lane
        // checked accessors: one vectorizable pass computes every lane
        // address and aggregates alignment (OR of the low bits - wbytes is a
        // power of two), the broadcast test and the maximum for a single
        // warp-wide bounds check, then the data moves through the raw word
        // array. A broadcast (all lanes at one address - every tile read)
        // collapses the 32-lane gather to one load per word, splatted.
        std::uint32_t agg = 0, mx = 0, diff = 0;
        const std::uint32_t first = ab[0] + d.imm;
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = ab[l] + d.imm;
          res.lane_addrs[l] = addr;
          agg |= addr;
          diff |= addr ^ first;
          mx = std::max(mx, addr);
        }
        VGPU_EXPECTS_MSG((agg & (wbytes - 1u)) == 0, "misaligned shared access");
        VGPU_EXPECTS_MSG(static_cast<std::uint64_t>(mx) + 4ull * words <=
                             smem_.size_bytes(),
                         "shared load out of bounds");
        const std::uint32_t* const sp = smem_.words();
        std::uint32_t* const o = row(d.dst_slot);
        if (diff == 0) {
          for (std::uint32_t c = 0; c < words; ++c) {
            const std::uint32_t v = sp[first / 4u + c];
            for (std::uint32_t l = 0; l < warp_size; ++l) o[c * 32u + l] = v;
          }
        } else {
          for (std::uint32_t l = 0; l < warp_size; ++l) {
            const std::uint32_t w0 = res.lane_addrs[l] / 4u;
            for (std::uint32_t c = 0; c < words; ++c) {
              o[c * 32u + l] = sp[w0 + c];
            }
          }
        }
      } else if (d.is_store) {
        const std::uint32_t* const v = row(d.src_slot[1]);
        for_lanes([&](std::uint32_t l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned shared access");
          res.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            smem_.store_u32(addr + 4u * c, v[c * 32u + l]);
          }
        });
      } else {
        std::uint32_t* const o = row(d.dst_slot);
        for_lanes([&](std::uint32_t l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned shared access");
          res.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            o[c * 32u + l] = smem_.load_u32(addr + 4u * c);
          }
        });
      }
      // Serialization degree: same single definition as the reference path
      // (warp_bank_conflict_degree), optionally served from the pattern memo
      // - hits are exact, so the degree can never differ from a direct
      // computation.
      const std::span<const std::uint32_t> la(res.lane_addrs.data(), warp_size);
      res.shared_conflict_degree =
          cmemo_ != nullptr
              ? cmemo_->lookup(la, exec, words)
              : warp_bank_conflict_degree(la, exec, words, spec_.half_warp,
                                          spec_.shared_mem_banks);
      break;
    }

    // ---- control ---------------------------------------------------------------
    case Opcode::kBar:
      ws.at_barrier = true;
      ++ws.ip;
      return res;
    case Opcode::kExit:
      VGPU_EXPECTS_MSG(ws.stack.empty(), "exit with non-empty divergence stack");
      ws.done = true;
      return res;
    case Opcode::kBra:
      transfer(ws, d.target);
      return res;
    case Opcode::kBraCond: {
      Mask p = ws.preds[d.psrc0];
      if (d.branch_if_false) p = ~p;
      const Mask taken = ws.active & p;
      BlockId next;
      if (taken == ws.active) {
        next = d.target;
      } else if (taken == 0) {
        next = d.target2;
      } else {
        res.divergent_branch = true;
        const BlockId r = d.reconv;
        if (d.target == r) {
          park(ws, r, taken);
          ws.active &= ~taken;
          next = d.target2;
        } else if (d.target2 == r) {
          park(ws, r, ws.active & ~taken);
          ws.active = taken;
          next = d.target;
        } else {
          ws.stack.push_back(DivEntry{r, 0, ws.active & ~taken, d.target2});
          ws.active = taken;
          next = d.target;
        }
      }
      transfer(ws, next);
      return res;
    }

    // ---- register ALU / predicates / moves / clock -----------------------
    default:
      exec_alu(d, ws, exec, converged, base_thread, now);
      break;
  }

  ++ws.ip;
  return res;
}


// Batched dispatch over a pre-segmented straight-line run. Inside a run no
// instruction can read the clock, touch memory, branch, take a guard, or
// write a predicate, so with a fully converged warp the per-step work of
// step_fast (guard evaluation, convergence test, StepResult construction)
// collapses to a tight loop over exec_alu. The warp's mask cannot change
// within the run, so checking convergence once up front is exact.
const DecodedRun* BlockExec::step_run(std::uint32_t w, std::uint32_t max_len,
                                      StepResult* fused, bool* fused_done) {
  if (dec_ == nullptr) return nullptr;
  WarpState& ws = warps_[w];
  if (ws.done || ws.at_barrier) return nullptr;
  if ((ws.active & full_mask_) != full_mask_) return nullptr;
  const std::size_t first = dec_->block_start[ws.block] + ws.ip;
  const DecodedRun& run = dec_->runs[first];
  if (run.len == 0) return nullptr;
  const std::uint32_t n =
      max_len == 0 ? run.len : std::min(max_len, run.len);
  const std::uint32_t base_thread = ws.index * spec_.warp_size;
  if (threaded_ != nullptr) {
    // Compiled dispatch: pre-resolved operand rows, dense handlers, one
    // indirect jump per instruction (threaded.cpp) - or, for a full run
    // starting at a compiled trace head, one jump per trace *segment*
    // (traces.cpp). All dispatches are bit-identical to the exec_alu loop
    // below.
    ThreadedCtx ctx;
    ctx.params = bp_.params.data();
    ctx.block_id = bp_.block_id;
    ctx.block_threads = bp_.cfg.block_threads;
    ctx.grid_blocks = bp_.cfg.grid_blocks;
    ctx.sm_id = bp_.sm_id;
    ctx.warp_index = ws.index;
    ctx.base_thread = base_thread;
    ctx.warp_size = spec_.warp_size;
    const std::uint32_t tr = traces_ != nullptr && n == run.len
                                 ? traces_->trace_at[first]
                                 : kNoTrace;
    if (tr != kNoTrace) {
      exec_trace(*traces_, tr, ws.regs, ws.preds, ctx);
      ++*trace_hits_;
    } else {
      exec_threaded(threaded_->ops.data() + first, n, ws.regs, ws.preds, ctx);
    }
  } else {
    const DecodedInstr* const ds = dec_->instrs.data() + first;
    for (std::uint32_t i = 0; i < n; ++i) {
      exec_alu(ds[i], ws, full_mask_, /*converged=*/true, base_thread, 0);
    }
  }
  ws.ip += n;
  ws.issued += n;
  // Boundary-step fusion: the run's terminating memory op executes in the
  // same dispatch when the caller asks for it and the whole run was taken.
  // Ordering matches the separate step() call exactly: the terminator sees
  // the run's register writes, `issued` counts it after the run.
  if (fused != nullptr && n == run.len && run.fuse_boundary) {
    ++ws.issued;
    exec_boundary(dec_->instrs[first + n], ws, *fused);
    ++ws.ip;
    *fused_done = true;
  }
  return &run;
}

// The memory cases of step_fast, specialized for the boundary-fusion
// preconditions decode() checked (fusable_boundary): a converged warp and
// an unguarded memory op with no predicate write. Guard evaluation and the
// per-lane mask tests drop out; every architectural effect and every
// StepResult field a pricing/accounting path reads is produced exactly as
// step_fast would. `out` is caller-owned and may be reused across calls, so
// every field step_fast's fresh StepResult would default is written here.
void BlockExec::exec_boundary(const DecodedInstr& d, WarpState& ws,
                              StepResult& out) {
  out.kind = d.kind;
  out.region = d.region;
  out.op = d.op;
  out.divergent_branch = false;
  out.width = d.width;
  out.is_store = d.is_store;
  const Mask exec = ws.active;
  out.mem_mask = exec;
  out.shared_conflict_degree = 0;
  const std::uint32_t warp_size = spec_.warp_size;
  std::uint32_t* const R = ws.regs;
  auto row = [&](std::uint32_t s) -> std::uint32_t* { return R + s * 32u; };
  const std::uint32_t words = d.width_words;
  const std::uint32_t wbytes = d.width_bytes;
  // Lanes past the warp size never execute; a fresh StepResult leaves their
  // addresses zero and `mem_mask` can carry their bits, so match that.
  for (std::uint32_t l = warp_size; l < 32u; ++l) out.lane_addrs[l] = 0;

  switch (d.op) {
    case Opcode::kLdGlobal:
    case Opcode::kStGlobal: {
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      const std::uint32_t imm = d.imm;
      if (d.is_store) {
        const std::uint32_t* const v = row(d.src_slot[1]);
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned global access");
          out.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            gmem_.store_u32(addr + 4u * c, v[c * 32u + l]);
          }
        }
      } else {
        std::uint32_t* const o = row(d.dst_slot);
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned global access");
          out.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            o[c * 32u + l] = gmem_.load_u32(addr + 4u * c);
          }
        }
      }
      break;
    }
    case Opcode::kLdConst: {
      VGPU_EXPECTS_MSG(bp_.cmem != nullptr,
                       "kernel reads constant memory but none bound");
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      std::uint32_t* const o = row(d.dst_slot);
      for (std::uint32_t l = 0; l < warp_size; ++l) {
        const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
        out.lane_addrs[l] = addr;
        for (std::uint32_t c = 0; c < words; ++c) {
          o[c * 32u + l] = bp_.cmem->load_u32(addr + 4u * c);
        }
      }
      break;
    }
    case Opcode::kLdTex: {
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      std::uint32_t* const o = row(d.dst_slot);
      for (std::uint32_t l = 0; l < warp_size; ++l) {
        const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
        VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned texture fetch");
        out.lane_addrs[l] = addr;
        for (std::uint32_t c = 0; c < words; ++c) {
          o[c * 32u + l] = gmem_.load_u32(addr + 4u * c);
        }
      }
      break;
    }
    case Opcode::kLdLocal:
    case Opcode::kStLocal: {
      const std::uint32_t word = d.imm / 4;
      VGPU_EXPECTS_MSG(d.imm % 4 == 0 && word < local_words_,
                       "local access out of frame");
      std::uint32_t* const frame =
          ws.local + static_cast<std::size_t>(word) * 32u;
      if (d.is_store) {
        const std::uint32_t* const v = row(d.src_slot[1]);
        for (std::uint32_t l = 0; l < warp_size; ++l) frame[l] = v[l];
      } else {
        std::uint32_t* const o = row(d.dst_slot);
        for (std::uint32_t l = 0; l < warp_size; ++l) o[l] = frame[l];
      }
      break;
    }
    case Opcode::kLdShared:
    case Opcode::kStShared: {
      const bool has_base = d.src_slot[0] != kNoSlot;
      const std::uint32_t* const ab = has_base ? row(d.src_slot[0]) : nullptr;
      if (has_base && !d.is_store) {
        // The converged-load fast path of step_fast: aggregate
        // alignment/bounds across the warp, then move data through the raw
        // word array, collapsing broadcasts to one load per word. A
        // broadcast (every lane at the same address, the dominant shape in
        // tiled kernels) additionally skips the lane-address array and the
        // conflict memo: with a full mask the degree is exactly
        // warp_bank_conflict_degree's ceil(words / banks) - `words`
        // consecutive word accesses from one address, each bank hit at most
        // that often - and nothing downstream reads kShared lane addresses.
        std::uint32_t agg = 0, mx = 0, diff = 0;
        const std::uint32_t first = ab[0] + d.imm;
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = ab[l] + d.imm;
          agg |= addr;
          diff |= addr ^ first;
          mx = std::max(mx, addr);
        }
        VGPU_EXPECTS_MSG((agg & (wbytes - 1u)) == 0,
                         "misaligned shared access");
        VGPU_EXPECTS_MSG(static_cast<std::uint64_t>(mx) + 4ull * words <=
                             smem_.size_bytes(),
                         "shared load out of bounds");
        const std::uint32_t* const sp = smem_.words();
        std::uint32_t* const o = row(d.dst_slot);
        if (diff == 0) {
          for (std::uint32_t c = 0; c < words; ++c) {
            const std::uint32_t v = sp[first / 4u + c];
            for (std::uint32_t l = 0; l < warp_size; ++l) o[c * 32u + l] = v;
          }
          out.shared_conflict_degree =
              (words + spec_.shared_mem_banks - 1u) / spec_.shared_mem_banks;
          return;
        }
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = ab[l] + d.imm;
          out.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            o[c * 32u + l] = sp[addr / 4u + c];
          }
        }
      } else if (d.is_store) {
        const std::uint32_t* const v = row(d.src_slot[1]);
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned shared access");
          out.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            smem_.store_u32(addr + 4u * c, v[c * 32u + l]);
          }
        }
      } else {
        std::uint32_t* const o = row(d.dst_slot);
        for (std::uint32_t l = 0; l < warp_size; ++l) {
          const std::uint32_t addr = (has_base ? ab[l] : 0u) + d.imm;
          VGPU_EXPECTS_MSG(addr % wbytes == 0, "misaligned shared access");
          out.lane_addrs[l] = addr;
          for (std::uint32_t c = 0; c < words; ++c) {
            o[c * 32u + l] = smem_.load_u32(addr + 4u * c);
          }
        }
      }
      const std::span<const std::uint32_t> la(out.lane_addrs.data(),
                                              warp_size);
      out.shared_conflict_degree =
          cmemo_ != nullptr
              ? cmemo_->lookup(la, exec, words)
              : warp_bank_conflict_degree(la, exec, words, spec_.half_warp,
                                          spec_.shared_mem_banks);
      break;
    }
    default:
      VGPU_EXPECTS_MSG(false, "non-fusable boundary op");
  }
}

// The register-ALU subset of the fast path, shared between step_fast
// (single-step dispatch, any mask) and step_run (batched dispatch of
// converged straight-line runs). Architectural effects are exactly those of
// the corresponding step_ref cases. `now` feeds only the clock reads, which
// decode() never places inside a run.
void BlockExec::exec_alu(const DecodedInstr& d, WarpState& ws, Mask exec,
                         bool converged, std::uint32_t base_thread,
                         std::uint64_t now) {
  const std::uint32_t warp_size = spec_.warp_size;
  std::uint32_t* const R = ws.regs;
  auto row = [&](std::uint32_t s) -> std::uint32_t* { return R + s * 32u; };
  auto for_lanes = [&](auto&& fn) {
    if (converged) {
      for (std::uint32_t lane = 0; lane < warp_size; ++lane) fn(lane);
    } else {
      for (std::uint32_t lane = 0; lane < warp_size; ++lane) {
        if (exec & (1u << lane)) fn(lane);
      }
    }
  };

  switch (d.op) {
    // ---- f32 -------------------------------------------------------------
    case Opcode::kFAdd: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(as_f32(a[l]) + as_f32(b[l])); });
      break;
    }
    case Opcode::kFSub: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(as_f32(a[l]) - as_f32(b[l])); });
      break;
    }
    case Opcode::kFMul: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(as_f32(a[l]) * as_f32(b[l])); });
      break;
    }
    case Opcode::kFFma: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      const std::uint32_t* const c = row(d.src_slot[2]);
      for_lanes([&](std::uint32_t l) {
        o[l] = as_u32(as_f32(a[l]) * as_f32(b[l]) + as_f32(c[l]));
      });
      break;
    }
    case Opcode::kFRcp: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(1.0f / as_f32(a[l])); });
      break;
    }
    case Opcode::kFRsqrt: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) {
        o[l] = as_u32(1.0f / std::sqrt(as_f32(a[l])));
      });
      break;
    }
    case Opcode::kFNeg: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(-as_f32(a[l])); });
      break;
    }
    case Opcode::kFAbs: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(std::fabs(as_f32(a[l]))); });
      break;
    }
    case Opcode::kFMin: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) {
        o[l] = as_u32(std::fmin(as_f32(a[l]), as_f32(b[l])));
      });
      break;
    }
    case Opcode::kFMax: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) {
        o[l] = as_u32(std::fmax(as_f32(a[l]), as_f32(b[l])));
      });
      break;
    }

    // ---- u32 -------------------------------------------------------------
    case Opcode::kIAdd: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] + b[l]; });
      break;
    }
    case Opcode::kISub: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] - b[l]; });
      break;
    }
    case Opcode::kIMul: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] * b[l]; });
      break;
    }
    case Opcode::kIMad: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      const std::uint32_t* const c = row(d.src_slot[2]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] * b[l] + c[l]; });
      break;
    }
    case Opcode::kIAddImm: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t imm = d.imm;
      for_lanes([&](std::uint32_t l) { o[l] = a[l] + imm; });
      break;
    }
    case Opcode::kShl: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] << (b[l] & 31u); });
      break;
    }
    case Opcode::kShr: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] >> (b[l] & 31u); });
      break;
    }
    case Opcode::kAnd: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] & b[l]; });
      break;
    }
    case Opcode::kOr: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] | b[l]; });
      break;
    }
    case Opcode::kXor: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l] ^ b[l]; });
      break;
    }
    case Opcode::kIMin: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = std::min(a[l], b[l]); });
      break;
    }
    case Opcode::kIMax: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      for_lanes([&](std::uint32_t l) { o[l] = std::max(a[l], b[l]); });
      break;
    }

    // ---- moves / conversions ----------------------------------------------
    case Opcode::kMov: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) { o[l] = a[l]; });
      break;
    }
    case Opcode::kMovImm: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t imm = d.imm;
      for_lanes([&](std::uint32_t l) { o[l] = imm; });
      break;
    }
    case Opcode::kMovParam: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t v = bp_.params[d.imm];
      for_lanes([&](std::uint32_t l) { o[l] = v; });
      break;
    }
    case Opcode::kMovSpecial: {
      std::uint32_t* const o = row(d.dst_slot);
      const auto s = static_cast<Special>(d.imm);
      for_lanes([&](std::uint32_t l) {
        std::uint32_t v = 0;
        switch (s) {
          case Special::kTid: v = base_thread + l; break;
          case Special::kCtaid: v = bp_.block_id; break;
          case Special::kNtid: v = bp_.cfg.block_threads; break;
          case Special::kNctaid: v = bp_.cfg.grid_blocks; break;
          case Special::kLane: v = l; break;
          case Special::kWarpId: v = ws.index; break;
          case Special::kSmId: v = bp_.sm_id; break;
          case Special::kClock: v = static_cast<std::uint32_t>(now); break;
        }
        o[l] = v;
      });
      break;
    }
    case Opcode::kClock: {
      std::uint32_t* const o = row(d.dst_slot);
      const auto v = static_cast<std::uint32_t>(now);
      for_lanes([&](std::uint32_t l) { o[l] = v; });
      break;
    }
    case Opcode::kI2F: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) { o[l] = as_u32(static_cast<float>(a[l])); });
      break;
    }
    case Opcode::kF2I: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      for_lanes([&](std::uint32_t l) {
        const float f = as_f32(a[l]);
        o[l] = f <= 0.0f ? 0u : static_cast<std::uint32_t>(f);
      });
      break;
    }

    // ---- predicates --------------------------------------------------------
    case Opcode::kSetp: {
      Mask result = 0;
      const std::uint32_t* const a = row(d.src_slot[0]);
      const bool has_reg_b = d.src_slot[1] != kNoSlot;
      const std::uint32_t* const b = has_reg_b ? row(d.src_slot[1]) : nullptr;
      // The comparison op is dispatched once, outside the lane loop, to a
      // branchless cmp-specialized loop (result bits accumulate by shift-or,
      // not a data-dependent branch); semantics per case are exactly
      // eval_cmp's operators.
      auto cmp_loop = [&](auto cmpfn) {
        if (d.cmp_is_float) {
          if (has_reg_b) {
            for_lanes([&](std::uint32_t l) {
              result |= static_cast<Mask>(cmpfn(as_f32(a[l]), as_f32(b[l])))
                        << l;
            });
          } else {
            const float bi = as_f32(d.imm);
            for_lanes([&](std::uint32_t l) {
              result |= static_cast<Mask>(cmpfn(as_f32(a[l]), bi)) << l;
            });
          }
        } else {
          if (has_reg_b) {
            for_lanes([&](std::uint32_t l) {
              result |= static_cast<Mask>(cmpfn(a[l], b[l])) << l;
            });
          } else {
            const std::uint32_t bi = d.imm;
            for_lanes([&](std::uint32_t l) {
              result |= static_cast<Mask>(cmpfn(a[l], bi)) << l;
            });
          }
        }
      };
      switch (d.cmp) {
        case CmpOp::kEq: cmp_loop([](auto x, auto y) { return x == y; }); break;
        case CmpOp::kNe: cmp_loop([](auto x, auto y) { return x != y; }); break;
        case CmpOp::kLt: cmp_loop([](auto x, auto y) { return x < y; }); break;
        case CmpOp::kLe: cmp_loop([](auto x, auto y) { return x <= y; }); break;
        case CmpOp::kGt: cmp_loop([](auto x, auto y) { return x > y; }); break;
        case CmpOp::kGe: cmp_loop([](auto x, auto y) { return x >= y; }); break;
      }
      ws.preds[d.pdst] = (ws.preds[d.pdst] & ~exec) | (result & exec);
      break;
    }
    case Opcode::kPAnd:
      ws.preds[d.pdst] = (ws.preds[d.pdst] & ~exec) |
                         (ws.preds[d.psrc0] & ws.preds[d.psrc1] & exec);
      break;
    case Opcode::kPOr:
      ws.preds[d.pdst] = (ws.preds[d.pdst] & ~exec) |
                         ((ws.preds[d.psrc0] | ws.preds[d.psrc1]) & exec);
      break;
    case Opcode::kPNot:
      ws.preds[d.pdst] =
          (ws.preds[d.pdst] & ~exec) | (~ws.preds[d.psrc0] & exec);
      break;
    case Opcode::kSel: {
      std::uint32_t* const o = row(d.dst_slot);
      const std::uint32_t* const a = row(d.src_slot[0]);
      const std::uint32_t* const b = row(d.src_slot[1]);
      const Mask p = ws.preds[d.psrc0];
      for_lanes([&](std::uint32_t l) {
        o[l] = (p & (1u << l)) ? a[l] : b[l];
      });
      break;
    }
    default:
      break;  // memory/control ops never reach exec_alu
  }
}

}  // namespace vgpu
