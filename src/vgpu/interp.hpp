// interp.hpp - SIMT execution of one thread block.
//
// BlockExec holds the architectural state of one resident thread block
// (per-warp registers, predicates, divergence stacks, shared memory) and
// exposes a single-instruction stepper. Both executors are built on it:
// the functional executor (executor.hpp) runs warps to completion for
// numerical results, and the timing executor (timing.hpp) interleaves
// steps under a warp scheduler and charges cycle costs to each StepResult.
//
// Divergence uses a reconvergence stack driven by the `reconv` annotation
// the KernelBuilder attaches to conditional branches, the software analogue
// of the G80's SSY/join mechanism.
//
// Two execution paths share this state:
//   * the reference path interprets `Instruction` directly (step_ref), and
//   * the fast path (step_fast) dispatches off a pre-decoded stream
//     (decode.hpp) with operand slots already resolved, and is required to
//     be bit-identical to the reference in every architectural effect.
// Lane storage lives in per-block arenas owned by BlockExec (one
// allocation per block, not one per warp), and `reset()` lets executors
// reuse one BlockExec across the whole grid instead of reallocating.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "vgpu/arch.hpp"
#include "vgpu/ir.hpp"
#include "vgpu/launch.hpp"
#include "vgpu/memory.hpp"

namespace vgpu {

struct DecodedInstr;
struct DecodedProgram;
struct DecodedRun;
struct ThreadedProgram;
struct TraceProgram;
class ConflictMemo;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xFFFFFFFFu;

/// One divergence-stack entry. `parked` collects lanes waiting at `reconv`;
/// `pending_mask`/`pending_block` describe a not-yet-executed alternate path.
struct DivEntry {
  BlockId reconv = kNoBlock;
  Mask parked = 0;
  Mask pending_mask = 0;
  BlockId pending_block = kNoBlock;
};

struct WarpState {
  std::uint32_t index = 0;  ///< warp index within the block
  BlockId block = 0;
  std::uint32_t ip = 0;  ///< instruction index within the block
  Mask active = kFullMask;
  std::vector<DivEntry> stack;
  bool at_barrier = false;
  bool done = false;

  std::uint64_t ready_cycle = 0;  ///< used by the timing executor
  std::uint64_t issued = 0;       ///< dynamic warp instructions

  /// Lane storage: regs[slot * 32 + lane]; slot = Program::reg_base + comp.
  /// Points into the BlockExec-owned per-block arena.
  std::uint32_t* regs = nullptr;
  /// One 32-bit lane mask per predicate register (arena-backed).
  Mask* preds = nullptr;
  /// Per-thread local memory (spill frames): local[word * 32 + lane].
  std::uint32_t* local = nullptr;
};

/// What one instruction step did; the timing executor prices this.
struct StepResult {
  enum class Kind : std::uint8_t {
    kAlu, kGlobal, kShared, kConst, kTex, kLocal, kBarrier, kExit
  };
  Kind kind = Kind::kAlu;
  Region region = Region::kOther;
  Opcode op = Opcode::kExit;      ///< the executed opcode (for profiling)
  bool divergent_branch = false;  ///< kBraCond whose lanes split

  // memory step details (kGlobal / kShared)
  MemWidth width = MemWidth::kW32;
  bool is_store = false;
  Mask mem_mask = 0;                          ///< lanes that accessed memory
  std::array<std::uint32_t, 32> lane_addrs{};  ///< byte addresses per lane
  std::uint32_t shared_conflict_degree = 0;    ///< max serialization degree
};

/// Per-block launch parameters handed to BlockExec.
struct BlockParams {
  std::uint32_t block_id = 0;
  LaunchConfig cfg;
  std::span<const std::uint32_t> params;
  std::uint32_t sm_id = 0;
  /// Read-only constant space (may be null when the kernel uses none).
  const ConstantMemory* cmem = nullptr;
};

class BlockExec {
 public:
  /// When `dec` is non-null it must be `decode(prog)`; step() then runs the
  /// fast pre-decoded path. With `dec == nullptr` the reference interpreter
  /// runs.
  BlockExec(const Program& prog, const DeviceSpec& spec, GlobalMemory& gmem,
            const BlockParams& bp, const DecodedProgram* dec = nullptr);

  BlockExec(const BlockExec&) = delete;
  BlockExec& operator=(const BlockExec&) = delete;

  /// Rewind to the launch state for another block of the same kernel:
  /// zeroes lane storage and shared memory, resets every warp. Equivalent
  /// to constructing a fresh BlockExec with `bp`, without the allocations.
  void reset(const BlockParams& bp);

  [[nodiscard]] std::uint32_t num_warps() const {
    return static_cast<std::uint32_t>(warps_.size());
  }
  [[nodiscard]] WarpState& warp(std::uint32_t w) { return warps_[w]; }
  [[nodiscard]] const WarpState& warp(std::uint32_t w) const { return warps_[w]; }

  /// Execute the current instruction of warp `w`. `now` feeds the kClock
  /// probe (simulated cycle in timing mode, pseudo-time in functional mode).
  StepResult step(std::uint32_t w, std::uint64_t now);

  /// Batched dispatch: when warp `w` is fully converged and sits at the
  /// start of a non-empty straight-line run (DecodedRun), execute the whole
  /// run in one call and return its pre-aggregated accounting; returns
  /// nullptr when batching does not apply (reference path, warp done or at
  /// a barrier, divergent mask, or a zero-length run) and the caller must
  /// fall back to step(). Runs contain no clock reads, no memory accesses
  /// and no control flow, so no `now` is needed and no StepResult is
  /// produced; `issued` and `ip` advance by the executed count, keeping the
  /// functional executor's pseudo-time identical to single stepping.
  /// `max_len` caps the executed prefix (0 = the whole run; the timing
  /// executor stops early at preemption and bucket horizons); the returned
  /// descriptor always describes the full run, callers accounting prefixes
  /// use their own counts.
  ///
  /// Boundary-step fusion: when `fused` is non-null, the whole run executed
  /// and the run's terminator is a fusable memory op (DecodedRun::
  /// fuse_boundary), the terminator executes in the same call - `*fused` is
  /// filled exactly as step() would have and `*fused_done` set true. The
  /// caller prices/accounts `*fused` as it would a separate step; with
  /// `fused_done` false nothing past the run executed. Architectural
  /// effects are bit-identical to the separate step() call.
  const DecodedRun* step_run(std::uint32_t w, std::uint32_t max_len = 0,
                             StepResult* fused = nullptr,
                             bool* fused_done = nullptr);

  /// True when every existing lane of warp `w` is active - the precondition
  /// for batched dispatch (a converged mask cannot change inside a run).
  [[nodiscard]] bool warp_converged(std::uint32_t w) const {
    return (warps_[w].active & full_mask_) == full_mask_;
  }

  /// Install a compiled threaded-code program (threaded.hpp) for batched
  /// run dispatch: step_run then executes runs through the threaded
  /// executor instead of the per-instruction exec_alu switch. The program
  /// must be `build_threaded(*dec)` for the decoded program this BlockExec
  /// was constructed with; nullptr restores the exec_alu loop. Both
  /// dispatches are bit-identical in every architectural effect.
  void set_threaded(const ThreadedProgram* tp) { threaded_ = tp; }

  /// Install compiled superblock traces (traces.hpp) for batched run
  /// dispatch: full-run step_run calls starting at a trace head execute
  /// through exec_trace instead of the threaded loop, incrementing
  /// `*entered` per trace call (the `traces_entered` stat). The program
  /// must be `build_traces(*dec, *tp)` for the installed threaded program;
  /// only meaningful with a threaded program installed. nullptr disables
  /// trace dispatch. Both dispatches are bit-identical in every
  /// architectural effect.
  void set_traces(const TraceProgram* traces, std::uint64_t* entered) {
    traces_ = traces;
    trace_hits_ = entered;
  }

  /// Install a bank-conflict memo consulted by the fast path's shared-memory
  /// steps (nullptr = compute degrees directly). The memo must be bound to
  /// this device's warp geometry and bank count, and must not be shared
  /// across threads.
  void set_conflict_memo(ConflictMemo* memo) { cmemo_ = memo; }

  /// The instruction warp `w` would execute next (nullptr when the warp is
  /// done or parked at a barrier). The timing executor uses this to check
  /// scoreboard dependencies before issuing.
  [[nodiscard]] const Instruction* peek(std::uint32_t w) const;

  /// Pre-decoded twin of peek(); only valid when constructed with a
  /// DecodedProgram.
  [[nodiscard]] const DecodedInstr* peek_decoded(std::uint32_t w) const;

  [[nodiscard]] bool decoded() const { return dec_ != nullptr; }

  /// Register-file slot of an operand (base + component), for scoreboarding.
  [[nodiscard]] std::uint32_t operand_slot(const Operand& o, std::uint8_t extra = 0) const {
    return prog_.reg_base[o.reg] + o.comp + extra;
  }
  [[nodiscard]] const Program& program() const { return prog_; }

  [[nodiscard]] bool all_done() const;
  /// True when every warp is either done or waiting at the barrier and at
  /// least one warp waits (i.e. the barrier may be released).
  [[nodiscard]] bool barrier_releasable() const;
  void release_barrier();

 private:
  StepResult step_ref(std::uint32_t w, std::uint64_t now);
  StepResult step_fast(std::uint32_t w, std::uint64_t now);
  /// Fused execution of a run-terminating memory op on a converged warp
  /// (decode.cpp::fusable_boundary): the memory cases of step_fast with the
  /// guard evaluation and convergence test specialized away, writing into a
  /// caller-owned StepResult. Effects are exactly step_fast's.
  void exec_boundary(const DecodedInstr& d, WarpState& ws, StepResult& out);
  /// Architectural effects of one decoded register-ALU instruction (the
  /// batchable subset plus the clock/special reads step_fast routes here).
  void exec_alu(const DecodedInstr& d, WarpState& ws, Mask exec,
                bool converged, std::uint32_t base_thread, std::uint64_t now);

  void transfer(WarpState& ws, BlockId next);
  void park(WarpState& ws, BlockId reconv, Mask m);

  [[nodiscard]] std::uint32_t slot(const Operand& o, std::uint8_t extra = 0) const {
    return prog_.reg_base[o.reg] + o.comp + extra;
  }
  [[nodiscard]] std::uint32_t& lane_reg(WarpState& ws, const Operand& o,
                                        std::uint32_t lane, std::uint8_t extra = 0) {
    return ws.regs[slot(o, extra) * 32u + lane];
  }

  const Program& prog_;
  const DeviceSpec& spec_;
  GlobalMemory& gmem_;
  BlockParams bp_;
  SharedMemory smem_;
  std::vector<WarpState> warps_;

  const DecodedProgram* dec_ = nullptr;
  const ThreadedProgram* threaded_ = nullptr;  ///< optional run dispatch
  const TraceProgram* traces_ = nullptr;       ///< optional trace dispatch
  std::uint64_t* trace_hits_ = nullptr;        ///< counts exec_trace entries
  ConflictMemo* cmemo_ = nullptr;  ///< optional, fast path only
  /// Mask of lanes that exist at this warp size; `exec` covering all of
  /// them enables the convergence fast path (no per-lane mask tests).
  Mask full_mask_ = kFullMask;
  std::uint32_t local_words_ = 0;  ///< per-thread local frame, in words

  // Flattened per-block lane storage; WarpState pointers index into these.
  std::vector<std::uint32_t> reg_arena_;
  std::vector<Mask> pred_arena_;
  std::vector<std::uint32_t> local_arena_;
};

}  // namespace vgpu
