#include "vgpu/traces.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "vgpu/check.hpp"
#include "vgpu/decode.hpp"

namespace vgpu {

namespace {

[[nodiscard]] float as_f32(std::uint32_t v) { return std::bit_cast<float>(v); }
[[nodiscard]] std::uint32_t as_u32(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

#include "vgpu/threaded_handlers.inc"

#if defined(__GNUC__)
#define VGPU_TRACE_INLINE [[gnu::always_inline]] inline
#else
#define VGPU_TRACE_INLINE inline
#endif

// One inlinable function per handler body, so segment loops and pair fusions
// compose the exact same lane operations the threaded loops expand.
#define X(name, ...)                                                        \
  template <bool kWarp32>                                                   \
  VGPU_TRACE_INLINE void body_##name(                                       \
      const ThreadedOp* op, std::uint32_t* R, const std::uint32_t* preds,   \
      const ThreadedCtx& ctx) {                                             \
    const std::uint32_t lanes = kWarp32 ? 32u : ctx.warp_size;              \
    (void)preds;                                                            \
    (void)ctx;                                                              \
    (void)lanes;                                                            \
    __VA_ARGS__                                                             \
  }
VGPU_THREADED_HANDLERS(X)
#undef X

// Synthetic segment handlers for the FMA-chain idiom: alternating float
// mul/add/sub/fma pairs fuse into one dispatch per pair. Ids extend the
// plain THandler space; kPairs is indexed by `h - kTHandlerCount` and its
// order must match the pair label/case tables below.
struct PairDef {
  THandler a;
  THandler b;
};
inline constexpr PairDef kPairs[] = {
    {THandler::kFMul, THandler::kFAdd}, {THandler::kFAdd, THandler::kFMul},
    {THandler::kFFma, THandler::kFAdd}, {THandler::kFAdd, THandler::kFFma},
    {THandler::kFMul, THandler::kFSub}, {THandler::kFSub, THandler::kFMul},
    {THandler::kFFma, THandler::kFMul}, {THandler::kFMul, THandler::kFFma},
};
inline constexpr std::uint32_t kNumPairs =
    static_cast<std::uint32_t>(std::size(kPairs));

[[nodiscard]] std::uint32_t pair_handler(std::uint32_t a, std::uint32_t b) {
  for (std::uint32_t p = 0; p < kNumPairs; ++p) {
    if (static_cast<std::uint32_t>(kPairs[p].a) == a &&
        static_cast<std::uint32_t>(kPairs[p].b) == b) {
      return static_cast<std::uint32_t>(kTHandlerCount) + p;
    }
  }
  return kNoTrace;
}

// Segment dispatch, portable twin: one switch per segment, tight loops
// inside. Always compiled so builds without computed goto (and the
// differential tests on them) run the same specialization.
template <bool kWarp32>
void trace_switch(const TraceSegment* s, const TraceSegment* const send,
                  const ThreadedOp* op, std::uint32_t* R,
                  const std::uint32_t* preds, const ThreadedCtx& ctx) {
  for (; s != send; ++s) {
    switch (s->h) {
#define X(name, ...)                                          \
  case static_cast<std::uint32_t>(THandler::name): {          \
    const ThreadedOp* const e = op + s->count;                \
    do {                                                      \
      body_##name<kWarp32>(op, R, preds, ctx);                \
      ++op;                                                   \
    } while (op != e);                                        \
  } break;
      VGPU_THREADED_HANDLERS(X)
#undef X
#define VGPU_PAIR_CASE(idx, ba, bb)                           \
  case static_cast<std::uint32_t>(kTHandlerCount) + idx: {    \
    for (std::uint32_t n = s->count; n-- != 0;) {             \
      body_##ba<kWarp32>(op, R, preds, ctx);                  \
      ++op;                                                   \
      body_##bb<kWarp32>(op, R, preds, ctx);                  \
      ++op;                                                   \
    }                                                         \
  } break;
      VGPU_PAIR_CASE(0u, kFMul, kFAdd)
      VGPU_PAIR_CASE(1u, kFAdd, kFMul)
      VGPU_PAIR_CASE(2u, kFFma, kFAdd)
      VGPU_PAIR_CASE(3u, kFAdd, kFFma)
      VGPU_PAIR_CASE(4u, kFMul, kFSub)
      VGPU_PAIR_CASE(5u, kFSub, kFMul)
      VGPU_PAIR_CASE(6u, kFFma, kFMul)
      VGPU_PAIR_CASE(7u, kFMul, kFFma)
#undef VGPU_PAIR_CASE
      default:
        VGPU_EXPECTS_MSG(false, "invalid trace segment handler");
    }
  }
}

#if defined(VGPU_HAVE_COMPUTED_GOTO)
// Segment dispatch through a label table: one indirect jump per *segment*
// (not per op), with uniform stretches and fused pairs looping on a direct
// branch in between.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
#if defined(__clang__)
#pragma GCC diagnostic ignored "-Wgnu-label-as-value"
#endif
template <bool kWarp32>
void trace_goto(const TraceSegment* s, const TraceSegment* const send,
                const ThreadedOp* op, std::uint32_t* R,
                const std::uint32_t* preds, const ThreadedCtx& ctx) {
#define X(name, ...) &&L_##name,
  static const void* const labels[] = {
      VGPU_THREADED_HANDLERS(X) &&P_MulAdd, &&P_AddMul, &&P_FmaAdd,
      &&P_AddFma, &&P_MulSub,   &&P_SubMul, &&P_FmaMul, &&P_MulFma};
#undef X
  goto* labels[s->h];
#define X(name, ...)                                \
  L_##name : {                                      \
    const ThreadedOp* const e = op + s->count;      \
    do {                                            \
      body_##name<kWarp32>(op, R, preds, ctx);      \
      ++op;                                         \
    } while (op != e);                              \
  }                                                 \
  if (++s == send) return;                          \
  goto* labels[s->h];
  VGPU_THREADED_HANDLERS(X)
#undef X
#define VGPU_PAIR_LABEL(label, ba, bb)              \
  label : {                                         \
    for (std::uint32_t n = s->count; n-- != 0;) {   \
      body_##ba<kWarp32>(op, R, preds, ctx);        \
      ++op;                                         \
      body_##bb<kWarp32>(op, R, preds, ctx);        \
      ++op;                                         \
    }                                               \
  }                                                 \
  if (++s == send) return;                          \
  goto* labels[s->h];
  VGPU_PAIR_LABEL(P_MulAdd, kFMul, kFAdd)
  VGPU_PAIR_LABEL(P_AddMul, kFAdd, kFMul)
  VGPU_PAIR_LABEL(P_FmaAdd, kFFma, kFAdd)
  VGPU_PAIR_LABEL(P_AddFma, kFAdd, kFFma)
  VGPU_PAIR_LABEL(P_MulSub, kFMul, kFSub)
  VGPU_PAIR_LABEL(P_SubMul, kFSub, kFMul)
  VGPU_PAIR_LABEL(P_FmaMul, kFFma, kFMul)
  VGPU_PAIR_LABEL(P_MulFma, kFMul, kFFma)
#undef VGPU_PAIR_LABEL
}
#pragma GCC diagnostic pop
#endif  // VGPU_HAVE_COMPUTED_GOTO

/// Float-arithmetic handlers: a trace made only of these is an FMA chain.
[[nodiscard]] bool is_float_arith(std::uint32_t h) {
  switch (static_cast<THandler>(h)) {
    case THandler::kFAdd:
    case THandler::kFSub:
    case THandler::kFMul:
    case THandler::kFFma:
      return true;
    default:
      return false;
  }
}

}  // namespace

TraceProgram build_traces(const DecodedProgram& dec,
                          const ThreadedProgram& tp) {
  VGPU_EXPECTS_MSG(tp.ops.size() == dec.instrs.size(),
                   "threaded program does not match the decoded program");
  TraceProgram out;
  out.trace_at.assign(dec.instrs.size(), kNoTrace);
  std::vector<std::uint32_t> rows;  // working-set scratch

  for (std::size_t b = 0; b < dec.block_start.size(); ++b) {
    const std::size_t begin = dec.block_start[b];
    const std::size_t end = b + 1 < dec.block_start.size()
                                ? dec.block_start[b + 1]
                                : dec.instrs.size();
    for (std::size_t i = begin; i < end; ++i) {
      const DecodedRun& run = dec.runs[i];
      if (run.len < 2) continue;
      // Heads only: a position mid-run (its predecessor continues a run)
      // is reachable only after a timing-executor preemption and executes
      // through the threaded loop instead.
      if (i != begin && dec.runs[i - 1].len != 0) continue;

      Trace tr;
      tr.op_begin = static_cast<std::uint32_t>(out.ops.size());
      tr.seg_begin = static_cast<std::uint32_t>(out.segs.size());
      tr.len = run.len;
      out.ops.insert(out.ops.end(), tp.ops.begin() + static_cast<std::ptrdiff_t>(i),
                     tp.ops.begin() + static_cast<std::ptrdiff_t>(i + run.len));

      // Segment the handler sequence: maximal uniform stretches first, then
      // alternating pairs from the fusion table, one-op segments otherwise.
      const ThreadedOp* const ops = out.ops.data() + tr.op_begin;
      std::uint32_t j = 0;
      bool fma_chain = true;
      while (j < run.len) {
        const std::uint32_t h = ops[j].h;
        fma_chain = fma_chain && is_float_arith(h);
        std::uint32_t k = j + 1;
        while (k < run.len && ops[k].h == h) ++k;
        if (k - j >= 2) {
          out.segs.push_back(TraceSegment{h, k - j});
          j = k;
          continue;
        }
        if (j + 1 < run.len) {
          const std::uint32_t ph = pair_handler(h, ops[j + 1].h);
          if (ph != kNoTrace) {
            std::uint32_t pairs = 1;
            while (j + 2 * pairs + 1 < run.len &&
                   ops[j + 2 * pairs].h == h &&
                   ops[j + 2 * pairs + 1].h == ops[j + 1].h) {
              ++pairs;
            }
            out.segs.push_back(TraceSegment{ph, pairs});
            j += 2 * pairs;
            continue;
          }
        }
        out.segs.push_back(TraceSegment{h, 1});
        ++j;
      }
      tr.seg_count = static_cast<std::uint32_t>(out.segs.size()) - tr.seg_begin;

      // Register working set (the dense-frame remap analysis; execution
      // addresses the original file - see the header comment).
      rows.clear();
      for (std::uint32_t o = 0; o < run.len; ++o) {
        const DecodedInstr& d = dec.instrs[i + o];
        const auto add = [&rows](std::uint32_t slot) {
          if (slot == kNoSlot) return;
          if (std::find(rows.begin(), rows.end(), slot) == rows.end()) {
            rows.push_back(slot);
          }
        };
        add(d.dst_slot);
        add(d.src_slot[0]);
        add(d.src_slot[1]);
        if (d.op != Opcode::kSel) add(d.src_slot[2]);
      }
      tr.frame_slots = static_cast<std::uint32_t>(rows.size());

      tr.shape = tr.seg_count == 1 &&
                         out.segs[tr.seg_begin].h < kTHandlerCount
                     ? TraceShape::kUniform
                 : fma_chain ? TraceShape::kFmaChain
                             : TraceShape::kGeneric;
      out.trace_at[i] = static_cast<std::uint32_t>(out.traces.size());
      out.traces.push_back(tr);
    }
  }
  return out;
}

void exec_trace(const TraceProgram& tp, std::uint32_t trace,
                std::uint32_t* regs, const std::uint32_t* preds,
                const ThreadedCtx& ctx) {
  const Trace& tr = tp.traces[trace];
  const TraceSegment* const s = tp.segs.data() + tr.seg_begin;
  const TraceSegment* const send = s + tr.seg_count;
  const ThreadedOp* const op = tp.ops.data() + tr.op_begin;
#if defined(VGPU_HAVE_COMPUTED_GOTO)
  if (ctx.warp_size == 32) {
    trace_goto<true>(s, send, op, regs, preds, ctx);
  } else {
    trace_goto<false>(s, send, op, regs, preds, ctx);
  }
#else
  if (ctx.warp_size == 32) {
    trace_switch<true>(s, send, op, regs, preds, ctx);
  } else {
    trace_switch<false>(s, send, op, regs, preds, ctx);
  }
#endif
}

}  // namespace vgpu
