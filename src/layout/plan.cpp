#include "layout/plan.hpp"

#include <algorithm>

#include "vgpu/check.hpp"

namespace layout {

using vgpu::MemWidth;

const char* to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::kAoS: return "AoS";
    case SchemeKind::kSoA: return "SoA";
    case SchemeKind::kAoaS: return "AoaS";
    case SchemeKind::kSoAoaS: return "SoAoaS";
  }
  return "?";
}

std::vector<SchemeKind> all_schemes() {
  return {SchemeKind::kAoS, SchemeKind::kSoA, SchemeKind::kAoaS,
          SchemeKind::kSoAoaS};
}

namespace {

[[nodiscard]] std::uint32_t align_up(std::uint32_t v, std::uint32_t unit) {
  return (v + unit - 1) / unit * unit;
}

/// Pad a payload to the next device-transactable size (4, 8 or a multiple
/// of 16 bytes) so the sub-struct can be fetched with one aligned load.
[[nodiscard]] std::uint32_t aligned_stride(std::uint32_t payload) {
  if (payload <= 4) return 4;
  if (payload <= 8) return 8;
  return align_up(payload, 16);
}

/// Vector loads covering `stride` bytes (stride is 4, 8 or 16k).
void append_loads(std::uint32_t group, std::uint32_t stride,
                  std::vector<LoadStep>& plan) {
  if (stride == 4) {
    plan.push_back({group, 0, MemWidth::kW32});
    return;
  }
  if (stride == 8) {
    plan.push_back({group, 0, MemWidth::kW64});
    return;
  }
  VGPU_EXPECTS(stride % 16 == 0);
  for (std::uint32_t off = 0; off < stride; off += 16) {
    plan.push_back({group, off, MemWidth::kW128});
  }
}

}  // namespace

PhysicalLayout plan_layout(const RecordDesc& record, SchemeKind kind) {
  VGPU_EXPECTS_MSG(!record.fields.empty(), "record has no fields");
  PhysicalLayout out;
  out.kind = kind;
  out.record = record;
  const std::uint32_t nf = record.num_fields();

  switch (kind) {
    case SchemeKind::kAoS: {
      ArrayGroup g;
      g.name = record.name;
      for (std::uint32_t f = 0; f < nf; ++f) g.field_ids.push_back(f);
      g.payload = 4 * nf;
      g.stride = g.payload;  // packed, no padding (Fig. 2)
      out.groups.push_back(g);
      for (std::uint32_t f = 0; f < nf; ++f) {
        out.load_plan.push_back({0, 4 * f, MemWidth::kW32});
      }
      break;
    }
    case SchemeKind::kSoA: {
      for (std::uint32_t f = 0; f < nf; ++f) {
        ArrayGroup g;
        g.name = record.fields[f].name;
        g.field_ids = {f};
        g.payload = 4;
        g.stride = 4;
        out.groups.push_back(g);
        out.load_plan.push_back({f, 0, MemWidth::kW32});
      }
      break;
    }
    case SchemeKind::kAoaS: {
      ArrayGroup g;
      g.name = record.name + "_aligned";
      for (std::uint32_t f = 0; f < nf; ++f) g.field_ids.push_back(f);
      g.payload = 4 * nf;
      g.stride = aligned_stride(g.payload);  // hidden padding (Fig. 6)
      out.groups.push_back(g);
      append_loads(0, g.stride, out.load_plan);
      break;
    }
    case SchemeKind::kSoAoaS: {
      // Step 1 (Sec. IV): group fields with similar access frequencies.
      // Step 2: split groups into sub-structs of at most 16 bytes.
      // Step 3: one array per aligned sub-struct.
      for (AccessFreq freq : {AccessFreq::kHot, AccessFreq::kCold}) {
        std::vector<std::uint32_t> members;
        for (std::uint32_t f = 0; f < nf; ++f) {
          if (record.fields[f].freq == freq) members.push_back(f);
        }
        std::uint32_t chunk_id = 0;
        for (std::size_t start = 0; start < members.size(); start += 4) {
          const std::size_t count = std::min<std::size_t>(4, members.size() - start);
          ArrayGroup g;
          g.name = std::string(to_string(freq)) + "_" + std::to_string(chunk_id++);
          g.field_ids.assign(members.begin() + static_cast<std::ptrdiff_t>(start),
                             members.begin() + static_cast<std::ptrdiff_t>(start + count));
          g.payload = 4 * static_cast<std::uint32_t>(count);
          g.stride = aligned_stride(g.payload);
          const auto group_idx = static_cast<std::uint32_t>(out.groups.size());
          out.groups.push_back(g);
          append_loads(group_idx, out.groups.back().stride, out.load_plan);
        }
      }
      break;
    }
  }
  return out;
}

std::uint32_t PhysicalLayout::bytes_per_element() const {
  std::uint32_t total = 0;
  for (const ArrayGroup& g : groups) total += g.stride;
  return total;
}

std::uint64_t PhysicalLayout::bytes(std::uint64_t n) const {
  const std::vector<std::uint64_t> bases = group_bases(n);
  return bases.back() + static_cast<std::uint64_t>(groups.back().stride) * n;
}

std::uint64_t PhysicalLayout::element_offset(std::uint32_t group,
                                             std::uint64_t element) const {
  VGPU_EXPECTS(group < groups.size());
  return static_cast<std::uint64_t>(groups[group].stride) * element;
}

std::uint64_t PhysicalLayout::field_offset(std::uint32_t field_id,
                                           std::uint64_t element,
                                           std::uint32_t& group_out) const {
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    const auto& ids = groups[g].field_ids;
    for (std::uint32_t k = 0; k < ids.size(); ++k) {
      if (ids[k] == field_id) {
        group_out = g;
        return element_offset(g, element) + 4ull * k;
      }
    }
  }
  throw vgpu::ContractViolation("field not present in layout");
}

std::vector<std::uint64_t> PhysicalLayout::group_bases(std::uint64_t n) const {
  std::vector<std::uint64_t> bases;
  bases.reserve(groups.size());
  std::uint64_t cursor = 0;
  for (const ArrayGroup& g : groups) {
    cursor = (cursor + 255ull) & ~255ull;  // separate allocations, 256B aligned
    bases.push_back(cursor);
    cursor += static_cast<std::uint64_t>(g.stride) * n;
  }
  return bases;
}

}  // namespace layout
