// search.hpp - exhaustive layout-grouping optimization.
//
// The paper derives the SoAoaS grouping by hand (Sec. IV's three steps).
// This module searches *all* partitions of a record's fields into aligned
// sub-struct arrays (groups of at most four 32-bit fields) and returns the
// partition minimizing, in order:
//   1. transactions per half-warp for the hot-field fetch (the force
//      kernel's traffic),
//   2. bus bytes of that fetch (padding waste),
//   3. total bytes per element (storage overhead).
// Verifying that the paper's hand grouping is the optimum - and finding the
// optimum for records where the split is less obvious - is what a
// downstream user would want from the tool.
#pragma once

#include <cstdint>

#include "layout/analyzer.hpp"
#include "layout/plan.hpp"

namespace layout {

struct SearchResult {
  PhysicalLayout best;
  std::uint32_t hot_transactions = 0;  ///< per half-warp hot fetch
  std::uint64_t hot_bytes = 0;
  std::uint32_t bytes_per_element = 0;
  std::size_t candidates = 0;  ///< partitions evaluated
};

/// Exhaustive search (records up to 12 fields). Fields marked kHot form the
/// fetch whose traffic is minimized; cold fields only contribute to the
/// storage tiebreaker.
[[nodiscard]] SearchResult search_layout(
    const RecordDesc& record, vgpu::DriverModel driver = vgpu::DriverModel::kCuda10);

}  // namespace layout
