// plan.hpp - physical memory layouts for a logical record.
//
// plan_layout() turns a RecordDesc into one of the four physical layouts
// the paper studies (Sec. II-A..II-D):
//
//   AoS     - one array of packed structs (Fig. 2): stride = packed size,
//             one 32-bit load per field, non-coalesceable for stride > 4.
//   SoA     - one scalar array per field (Fig. 4): 32-bit loads, coalesced.
//   AoaS    - one array of align(16) structs (Fig. 6): stride padded to a
//             16-byte multiple, 128-bit vector loads, not coalesced.
//   SoAoaS  - fields grouped by access frequency, split into <= 16-byte
//             aligned sub-structs, one array per sub-struct (Fig. 8):
//             128-bit loads *and* coalescing.
//
// A PhysicalLayout is addressable (group/element/field -> byte offset) and
// carries the per-thread load plan (what a kernel issues to fetch a whole
// record), which the analyzer, the micro-benchmarks and the Gravit kernels
// all consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/record.hpp"
#include "vgpu/ir.hpp"

namespace layout {

enum class SchemeKind : std::uint8_t { kAoS, kSoA, kAoaS, kSoAoaS };

[[nodiscard]] const char* to_string(SchemeKind k);

/// One contiguous device array holding a fixed sub-struct per element.
struct ArrayGroup {
  std::string name;
  std::vector<std::uint32_t> field_ids;  ///< record fields stored here, in order
  std::uint32_t stride = 0;              ///< bytes per element (incl. padding)
  std::uint32_t payload = 0;             ///< bytes of real data per element
};

/// One load a thread issues when fetching a full record.
struct LoadStep {
  std::uint32_t group = 0;    ///< ArrayGroup index
  std::uint32_t offset = 0;   ///< byte offset within the element
  vgpu::MemWidth width = vgpu::MemWidth::kW32;
};

struct PhysicalLayout {
  SchemeKind kind = SchemeKind::kAoS;
  RecordDesc record;
  std::vector<ArrayGroup> groups;
  std::vector<LoadStep> load_plan;  ///< fetches every field exactly once

  /// Total device bytes for n elements.
  [[nodiscard]] std::uint64_t bytes(std::uint64_t n) const;
  /// Bytes per element including padding.
  [[nodiscard]] std::uint32_t bytes_per_element() const;
  /// Byte offset of (group, element) relative to the group's base.
  [[nodiscard]] std::uint64_t element_offset(std::uint32_t group,
                                             std::uint64_t element) const;
  /// Byte offset of field `field_id` of `element` relative to its group
  /// base; also reports the group.
  [[nodiscard]] std::uint64_t field_offset(std::uint32_t field_id,
                                           std::uint64_t element,
                                           std::uint32_t& group_out) const;
  /// Offsets of each group's base when groups are packed consecutively into
  /// one allocation sized for n elements (256-byte aligned between groups,
  /// like separate cudaMalloc calls).
  [[nodiscard]] std::vector<std::uint64_t> group_bases(std::uint64_t n) const;
};

/// Build the physical layout of `record` under `kind`. For kSoAoaS, fields
/// are grouped by AccessFreq and each group split into 16-byte sub-structs
/// (padded where needed), per the three-step procedure of Sec. IV.
[[nodiscard]] PhysicalLayout plan_layout(const RecordDesc& record, SchemeKind kind);

/// All four schemes in paper order.
[[nodiscard]] std::vector<SchemeKind> all_schemes();

}  // namespace layout
