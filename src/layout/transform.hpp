// transform.hpp - host-side data marshalling between logical records and
// physical device layouts.
//
// Host code keeps records in plain AoS float order (field 0..F-1 per
// element); pack() produces the exact byte image a PhysicalLayout expects
// on the device (including padding and group placement), unpack() inverts
// it. Round-tripping through any layout is lossless (tested).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "layout/plan.hpp"

namespace layout {

/// Lay out n records (aos_data.size() == n * record.num_fields(), field-major
/// within each element) into the device image of `phys`. The image length is
/// phys.bytes(n); padding bytes are zero.
[[nodiscard]] std::vector<std::byte> pack(const PhysicalLayout& phys,
                                          std::span<const float> aos_data,
                                          std::uint64_t n);

/// Inverse of pack: extract n records into aos_out (same shape as pack's
/// input).
void unpack(const PhysicalLayout& phys, std::span<const std::byte> image,
            std::span<float> aos_out, std::uint64_t n);

}  // namespace layout
