#include "layout/advisor.hpp"

#include <iomanip>
#include <sstream>

namespace layout {

Advice advise(const RecordDesc& record, vgpu::DriverModel driver) {
  Advice advice;
  advice.recommended = plan_layout(record, SchemeKind::kSoAoaS);

  for (SchemeKind kind : all_schemes()) {
    const PhysicalLayout phys = plan_layout(record, kind);
    const TransactionReport rep = analyze_half_warp(phys, driver);
    SchemeComparison cmp;
    cmp.kind = kind;
    cmp.loads_per_thread = rep.loads_per_thread();
    cmp.transactions_per_half_warp = rep.total_transactions();
    cmp.bytes_per_half_warp = rep.total_bytes();
    cmp.coalesced = rep.fully_coalesced();
    cmp.bytes_per_element = phys.bytes_per_element();
    advice.comparison.push_back(cmp);
  }

  std::ostringstream os;
  os << "Procedure of Sec. IV applied to '" << record.name << "' ("
     << record.num_fields() << " x 32-bit fields, "
     << record.packed_bytes() << " B packed):\n";
  os << "  1. Group by access frequency:";
  for (AccessFreq f : {AccessFreq::kHot, AccessFreq::kCold}) {
    os << "  " << to_string(f) << " = {";
    bool first = true;
    for (const Field& fld : record.fields) {
      if (fld.freq != f) continue;
      os << (first ? "" : ", ") << fld.name;
      first = false;
    }
    os << "}";
  }
  os << "\n  2. Split into aligned sub-structures:";
  for (const ArrayGroup& g : advice.recommended.groups) {
    os << "  " << g.name << " (" << g.payload << " B payload, " << g.stride
       << " B aligned)";
  }
  os << "\n  3. One array per sub-structure -> every load is a coalesced "
     << "64/128-bit access.\n";
  advice.rationale = std::move(os).str();
  return advice;
}

std::string format_advice(const Advice& advice) {
  std::ostringstream os;
  os << advice.rationale << "\n";
  os << std::left << std::setw(10) << "scheme" << std::right << std::setw(14)
     << "loads/thread" << std::setw(16) << "txn/half-warp" << std::setw(14)
     << "bus bytes" << std::setw(12) << "B/element" << std::setw(12)
     << "coalesced" << "\n";
  for (const SchemeComparison& c : advice.comparison) {
    os << std::left << std::setw(10) << to_string(c.kind) << std::right
       << std::setw(14) << c.loads_per_thread << std::setw(16)
       << c.transactions_per_half_warp << std::setw(14) << c.bytes_per_half_warp
       << std::setw(12) << c.bytes_per_element << std::setw(12)
       << (c.coalesced ? "yes" : "no") << "\n";
  }
  return std::move(os).str();
}

}  // namespace layout
