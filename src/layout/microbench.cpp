#include "layout/microbench.hpp"

#include "vgpu/builder.hpp"
#include "vgpu/opt.hpp"
#include "vgpu/regalloc.hpp"
#include "vgpu/verify.hpp"

namespace layout {

using vgpu::KernelBuilder;
using vgpu::MemWidth;
using vgpu::Program;
using vgpu::Region;
using vgpu::Val;

Program make_read_kernel(const PhysicalLayout& phys) {
  const auto ngroups = static_cast<std::uint32_t>(phys.groups.size());
  KernelBuilder kb(std::string("read_") + to_string(phys.kind), ngroups + 1);

  kb.region(Region::kSetup);
  Val i = kb.iadd(kb.imul(kb.ctaid(), kb.ntid()), kb.tid());
  // per-group element addresses (base + i * stride)
  std::vector<Val> elem_addr;
  elem_addr.reserve(ngroups);
  for (std::uint32_t g = 0; g < ngroups; ++g) {
    Val base = kb.param_u32(g);
    elem_addr.push_back(kb.imad(i, kb.imm_u32(phys.groups[g].stride), base));
  }

  kb.region(Region::kInner);
  Val c0 = kb.clock();
  // issue every load first (they are independent and can overlap in the
  // memory pipeline), then sum the values - the paper's protocol: "load
  // data from global memory ... sum up all the data we retrieved".
  std::vector<Val> loaded;
  loaded.reserve(phys.load_plan.size());
  for (const LoadStep& step : phys.load_plan) {
    loaded.push_back(kb.ld_global_vec(elem_addr[step.group], step.width,
                                      vgpu::VType::kF32, step.offset));
  }
  Val acc = kb.var_f32(kb.imm_f32(0.0f));
  for (std::size_t s = 0; s < loaded.size(); ++s) {
    for (std::uint8_t c = 0; c < loaded[s].width; ++c) {
      kb.fadd_into(acc, kb.comp(loaded[s], c));
    }
  }
  Val c1 = kb.clock();

  kb.region(Region::kOther);
  // Results go to two coalesced arrays (sums at out[0..n), deltas at
  // out[n..2n)) so the write-back does not distort the measured window.
  Val out_base = kb.param_u32(ngroups);
  Val n_total = kb.imul(kb.nctaid(), kb.ntid());
  Val sum_addr = kb.imad(i, kb.imm_u32(4), out_base);
  kb.st_global(sum_addr, acc, 0);
  Val delta_addr = kb.imad(kb.iadd(n_total, i), kb.imm_u32(4), out_base);
  kb.st_global(delta_addr, kb.isub(c1, c0), 0);

  Program prog = std::move(kb).finish();
  vgpu::run_standard_pipeline(prog);
  vgpu::allocate_registers(prog);
  vgpu::verify(prog);
  return prog;
}

}  // namespace layout
