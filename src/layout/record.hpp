// record.hpp - logical record descriptions.
//
// The memory-layout optimizations of Sec. II operate on "large structures":
// records of scalar fields whose total size exceeds the 128-bit alignment
// boundary of the device. A RecordDesc captures the logical record plus the
// per-field access frequency the grouping step of the advisor uses
// ("group data in portions with similar access frequencies", Sec. IV).
//
// Fields are 32-bit scalars (the paper's particle is 7 floats); wider
// members can be modeled as several fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace layout {

/// Relative access frequency class of a field within the hot kernel.
enum class AccessFreq : std::uint8_t {
  kHot,   ///< read every kernel invocation (positions, mass)
  kCold,  ///< read rarely relative to hot fields (velocities)
};

[[nodiscard]] inline const char* to_string(AccessFreq f) {
  return f == AccessFreq::kHot ? "hot" : "cold";
}

struct Field {
  std::string name;
  AccessFreq freq = AccessFreq::kHot;
};

struct RecordDesc {
  std::string name;
  std::vector<Field> fields;

  [[nodiscard]] std::uint32_t num_fields() const {
    return static_cast<std::uint32_t>(fields.size());
  }
  [[nodiscard]] std::uint32_t packed_bytes() const { return 4 * num_fields(); }
};

/// The Gravit particle record of Fig. 2: px,py,pz,vx,vy,vz,mass - positions
/// and mass hot (needed by every far-field evaluation), velocities cold
/// (integration only), exactly the grouping rationale of Sec. IV.
[[nodiscard]] inline RecordDesc gravit_record() {
  return RecordDesc{
      "particle_t",
      {{"px", AccessFreq::kHot},
       {"py", AccessFreq::kHot},
       {"pz", AccessFreq::kHot},
       {"vx", AccessFreq::kCold},
       {"vy", AccessFreq::kCold},
       {"vz", AccessFreq::kCold},
       {"mass", AccessFreq::kHot}}};
}

}  // namespace layout
