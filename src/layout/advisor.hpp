// advisor.hpp - the three-step layout procedure of Sec. IV as a tool.
//
// Given any record description, the advisor runs the paper's procedure:
//   1. group data in portions with similar access frequencies,
//   2. split structures exceeding the alignment boundary into 64/128-bit
//      alignable sub-structures,
//   3. organize the aligned structures in arrays for coalesced reads,
// and returns the recommended SoAoaS layout together with the analytic
// transaction comparison against the other three schemes - the tool a
// downstream user would actually reach for (see examples/layout_advisor).
#pragma once

#include <string>
#include <vector>

#include "layout/analyzer.hpp"
#include "layout/plan.hpp"

namespace layout {

struct SchemeComparison {
  SchemeKind kind{};
  std::uint32_t loads_per_thread = 0;
  std::uint32_t transactions_per_half_warp = 0;
  std::uint64_t bytes_per_half_warp = 0;
  bool coalesced = false;
  std::uint32_t bytes_per_element = 0;  ///< includes padding overhead
};

struct Advice {
  PhysicalLayout recommended;  ///< the SoAoaS plan
  std::vector<SchemeComparison> comparison;  ///< all four schemes
  std::string rationale;       ///< the three steps, instantiated
};

[[nodiscard]] Advice advise(const RecordDesc& record,
                            vgpu::DriverModel driver = vgpu::DriverModel::kCuda10);

/// Formatted comparison table (used by the example and bench binaries).
[[nodiscard]] std::string format_advice(const Advice& advice);

}  // namespace layout
