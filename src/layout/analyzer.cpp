#include "layout/analyzer.hpp"

#include <array>
#include <sstream>

#include "vgpu/coalesce.hpp"

namespace layout {

TransactionReport analyze_half_warp(const PhysicalLayout& phys,
                                    vgpu::DriverModel driver,
                                    std::uint64_t base_element) {
  TransactionReport report;
  report.kind = phys.kind;
  report.driver = driver;
  constexpr std::uint32_t kHalf = 16;
  std::array<std::uint32_t, kHalf> addrs{};
  // Group bases for a representative population (any n >= base+16 gives the
  // same per-step pattern since bases are 256-byte aligned).
  const std::vector<std::uint64_t> bases = phys.group_bases(base_element + kHalf);

  for (const LoadStep& step : phys.load_plan) {
    for (std::uint32_t lane = 0; lane < kHalf; ++lane) {
      const std::uint64_t addr =
          bases[step.group] +
          phys.element_offset(step.group, base_element + lane) + step.offset;
      addrs[lane] = static_cast<std::uint32_t>(addr);
    }
    vgpu::MemRequest req{std::span<const std::uint32_t>(addrs.data(), kHalf),
                         0xFFFFu, step.width, false};
    const vgpu::CoalesceResult res = vgpu::coalesce(req, driver);
    StepReport sr;
    sr.step = step;
    sr.transactions = static_cast<std::uint32_t>(res.transactions.size());
    sr.bytes = static_cast<std::uint32_t>(res.total_bytes());
    sr.coalesced = res.coalesced;
    report.steps.push_back(sr);
  }
  return report;
}

std::string format_report(const TransactionReport& report) {
  std::ostringstream os;
  os << to_string(report.kind) << " under " << vgpu::to_string(report.driver)
     << ": " << report.loads_per_thread() << " loads/thread, "
     << report.total_transactions() << " transactions/half-warp, "
     << report.total_bytes() << " bytes"
     << (report.fully_coalesced() ? " (coalesced)" : " (NOT coalesced)") << "\n";
  for (const StepReport& s : report.steps) {
    os << "    group " << s.step.group << " +" << s.step.offset << "  "
       << vgpu::width_bytes(s.step.width) * 8 << "-bit -> " << s.transactions
       << " txn, " << s.bytes << " B"
       << (s.coalesced ? "" : "  [scattered]") << "\n";
  }
  return std::move(os).str();
}

}  // namespace layout
