#include "layout/transform.hpp"

#include <cstring>

#include "vgpu/check.hpp"

namespace layout {

std::vector<std::byte> pack(const PhysicalLayout& phys,
                            std::span<const float> aos_data, std::uint64_t n) {
  const std::uint32_t nf = phys.record.num_fields();
  VGPU_EXPECTS_MSG(aos_data.size() == n * nf, "host data shape mismatch");
  std::vector<std::byte> image(phys.bytes(n));
  const std::vector<std::uint64_t> bases = phys.group_bases(n);
  for (std::uint64_t e = 0; e < n; ++e) {
    for (std::uint32_t f = 0; f < nf; ++f) {
      std::uint32_t g = 0;
      const std::uint64_t off = phys.field_offset(f, e, g);
      const float v = aos_data[e * nf + f];
      std::memcpy(image.data() + bases[g] + off, &v, 4);
    }
  }
  return image;
}

void unpack(const PhysicalLayout& phys, std::span<const std::byte> image,
            std::span<float> aos_out, std::uint64_t n) {
  const std::uint32_t nf = phys.record.num_fields();
  VGPU_EXPECTS_MSG(aos_out.size() == n * nf, "host output shape mismatch");
  VGPU_EXPECTS_MSG(image.size() >= phys.bytes(n), "device image too small");
  const std::vector<std::uint64_t> bases = phys.group_bases(n);
  for (std::uint64_t e = 0; e < n; ++e) {
    for (std::uint32_t f = 0; f < nf; ++f) {
      std::uint32_t g = 0;
      const std::uint64_t off = phys.field_offset(f, e, g);
      float v = 0.0f;
      std::memcpy(&v, image.data() + bases[g] + off, 4);
      aos_out[e * nf + f] = v;
    }
  }
}

}  // namespace layout
