#include "layout/search.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "vgpu/check.hpp"

namespace layout {

namespace {

[[nodiscard]] std::uint32_t aligned_stride(std::uint32_t payload) {
  if (payload <= 4) return 4;
  if (payload <= 8) return 8;
  return (payload + 15) / 16 * 16;
}

/// Build a PhysicalLayout from a field partition (groups of field indices).
PhysicalLayout layout_from_partition(const RecordDesc& record,
                                     const std::vector<std::vector<std::uint32_t>>& parts) {
  PhysicalLayout phys;
  phys.kind = SchemeKind::kSoAoaS;
  phys.record = record;
  for (const auto& part : parts) {
    ArrayGroup g;
    g.name = "g";
    g.name += std::to_string(phys.groups.size());
    g.field_ids = part;
    g.payload = 4 * static_cast<std::uint32_t>(part.size());
    g.stride = aligned_stride(g.payload);
    const auto idx = static_cast<std::uint32_t>(phys.groups.size());
    phys.groups.push_back(g);
    if (g.stride == 4) {
      phys.load_plan.push_back({idx, 0, vgpu::MemWidth::kW32});
    } else if (g.stride == 8) {
      phys.load_plan.push_back({idx, 0, vgpu::MemWidth::kW64});
    } else {
      for (std::uint32_t off = 0; off < g.stride; off += 16) {
        phys.load_plan.push_back({idx, off, vgpu::MemWidth::kW128});
      }
    }
  }
  return phys;
}

struct Cost {
  std::uint32_t hot_txn = 0;
  std::uint32_t hot_steps = 0;  ///< load instructions for the hot fetch -
                                ///< the paper's Sec. III finding is that
                                ///< reads per thread dominate, so this
                                ///< outranks byte traffic
  std::uint64_t hot_bytes = 0;
  std::uint32_t elem_bytes = 0;

  [[nodiscard]] bool operator<(const Cost& o) const {
    if (hot_txn != o.hot_txn) return hot_txn < o.hot_txn;
    if (hot_steps != o.hot_steps) return hot_steps < o.hot_steps;
    if (hot_bytes != o.hot_bytes) return hot_bytes < o.hot_bytes;
    return elem_bytes < o.elem_bytes;
  }
};

Cost evaluate(const RecordDesc& record, const PhysicalLayout& phys,
              vgpu::DriverModel driver) {
  // hot fetch = the load steps of groups containing at least one hot field
  std::vector<bool> hot_group(phys.groups.size(), false);
  for (std::size_t g = 0; g < phys.groups.size(); ++g) {
    for (const std::uint32_t f : phys.groups[g].field_ids) {
      if (record.fields[f].freq == AccessFreq::kHot) hot_group[g] = true;
    }
  }
  const TransactionReport rep = analyze_half_warp(phys, driver);
  Cost cost;
  cost.elem_bytes = phys.bytes_per_element();
  for (const StepReport& s : rep.steps) {
    if (!hot_group[s.step.group]) continue;
    cost.hot_txn += s.transactions;
    ++cost.hot_steps;
    cost.hot_bytes += s.bytes;
  }
  return cost;
}

/// Enumerate set partitions with block size <= 4 via the standard
/// "assign each element to an existing block or open a new one" recursion.
void enumerate(std::uint32_t field, std::uint32_t nfields,
               std::vector<std::vector<std::uint32_t>>& parts,
               const std::function<void()>& visit) {
  if (field == nfields) {
    visit();
    return;
  }
  // index-based: recursion grows `parts`, so no iterators/references may be
  // held across the recursive calls
  const std::size_t existing = parts.size();
  for (std::size_t b = 0; b < existing; ++b) {
    if (parts[b].size() >= 4) continue;
    parts[b].push_back(field);
    enumerate(field + 1, nfields, parts, visit);
    parts[b].pop_back();
  }
  parts.emplace_back();
  parts.back().push_back(field);
  enumerate(field + 1, nfields, parts, visit);
  parts.pop_back();
}

}  // namespace

SearchResult search_layout(const RecordDesc& record, vgpu::DriverModel driver) {
  VGPU_EXPECTS_MSG(record.num_fields() >= 1 && record.num_fields() <= 12,
                   "exhaustive search supports 1..12 fields");
  SearchResult result;
  bool have_best = false;
  Cost best_cost;

  std::vector<std::vector<std::uint32_t>> parts;
  enumerate(0, record.num_fields(), parts, [&] {
    ++result.candidates;
    const PhysicalLayout phys = layout_from_partition(record, parts);
    const Cost cost = evaluate(record, phys, driver);
    if (!have_best || cost < best_cost) {
      have_best = true;
      best_cost = cost;
      result.best = phys;
      result.hot_transactions = cost.hot_txn;
      result.hot_bytes = cost.hot_bytes;
      result.bytes_per_element = cost.elem_bytes;
    }
  });
  return result;
}

}  // namespace layout
