// analyzer.hpp - analytic transaction model per layout and driver.
//
// Reproduces the access-pattern analyses of the paper's Figs. 3, 5, 7 and 9
// without running a kernel: for one half-warp of threads reading
// consecutive elements, compute the DRAM transactions of every load step of
// a PhysicalLayout under a given coalescing model. The bench
// `access_patterns` prints these; the simulator's dynamic counts are tested
// to agree with this model (tests/layout/analyzer_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "layout/plan.hpp"
#include "vgpu/arch.hpp"

namespace layout {

struct StepReport {
  LoadStep step;
  std::uint32_t transactions = 0;
  std::uint32_t bytes = 0;
  bool coalesced = false;
};

struct TransactionReport {
  SchemeKind kind{};
  vgpu::DriverModel driver{};
  std::vector<StepReport> steps;

  [[nodiscard]] std::uint32_t loads_per_thread() const {
    return static_cast<std::uint32_t>(steps.size());
  }
  [[nodiscard]] std::uint32_t total_transactions() const {
    std::uint32_t t = 0;
    for (const StepReport& s : steps) t += s.transactions;
    return t;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t b = 0;
    for (const StepReport& s : steps) b += s.bytes;
    return b;
  }
  [[nodiscard]] bool fully_coalesced() const {
    for (const StepReport& s : steps) {
      if (!s.coalesced) return false;
    }
    return true;
  }
};

/// Analyze one half-warp reading elements base_element .. base_element+15.
[[nodiscard]] TransactionReport analyze_half_warp(
    const PhysicalLayout& phys, vgpu::DriverModel driver,
    std::uint64_t base_element = 0);

/// Human-readable table of one report (used by the access_patterns bench).
[[nodiscard]] std::string format_report(const TransactionReport& report);

}  // namespace layout
