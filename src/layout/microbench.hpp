// microbench.hpp - the strip-down memory benchmark kernel of Sec. III.
//
// Builds, for any PhysicalLayout, the exact measurement kernel the paper
// describes:
//   1. set up all the variables needed,
//   2. read the clock,
//   3. load the whole record using the layout under test,
//   4. sum the loaded values (so the loads cannot be dead-code-eliminated -
//      the same trick the paper needed against nvcc),
//   5. read the clock again and write the difference (and the sum) back to
//      global memory for review.
//
// Kernel parameters: one group base address per layout group, then the
// output buffer address. Each thread handles element i = global thread id
// and writes sum (f32) at out + 4*i and delta cycles (u32) at out + 4*(n+i),
// two coalesced result arrays sized n words each.
#pragma once

#include "layout/plan.hpp"
#include "vgpu/ir.hpp"

namespace layout {

[[nodiscard]] vgpu::Program make_read_kernel(const PhysicalLayout& phys);

/// Number of kernel parameters the read kernel expects (groups + out).
[[nodiscard]] inline std::uint32_t read_kernel_params(const PhysicalLayout& phys) {
  return static_cast<std::uint32_t>(phys.groups.size()) + 1;
}

}  // namespace layout
