#include "unroll/model.hpp"

#include "vgpu/check.hpp"

namespace unroll {

using vgpu::Program;
using vgpu::Region;

SbpCounts static_counts(const Program& prog, std::uint32_t inner_unroll) {
  VGPU_EXPECTS(inner_unroll >= 1);
  SbpCounts c;
  for (const vgpu::Block& blk : prog.blocks) {
    const auto n = static_cast<double>(blk.instrs.size());
    switch (blk.region) {
      case Region::kSetup: c.setup += n; break;
      case Region::kBlockFetch: c.block_fetch += n; break;
      case Region::kInner: c.inner += n; break;
      case Region::kOther: c.other += n; break;
    }
  }
  c.inner /= static_cast<double>(inner_unroll);
  return c;
}

SbpCounts dynamic_counts(const vgpu::LaunchStats& stats, std::uint64_t warps,
                         std::uint64_t tiles, std::uint64_t inner_iterations) {
  VGPU_EXPECTS(warps > 0 && tiles > 0 && inner_iterations > 0);
  SbpCounts c;
  c.setup = static_cast<double>(stats.region(Region::kSetup)) /
            static_cast<double>(warps);
  c.block_fetch = static_cast<double>(stats.region(Region::kBlockFetch)) /
                  static_cast<double>(tiles);
  c.inner = static_cast<double>(stats.region(Region::kInner)) /
            static_cast<double>(inner_iterations);
  c.other = static_cast<double>(stats.region(Region::kOther)) /
            static_cast<double>(warps);
  return c;
}

double eq3_speedup(const SbpCounts& before, const SbpCounts& after, double n,
                   double k) {
  VGPU_EXPECTS(n > 0 && k > 0);
  // `other` (boundary checks, epilogue stores) executes once per thread,
  // like S.
  const double load1 = before.setup + before.other +
                       (n / k) * before.block_fetch + n * before.inner;
  const double load2 = after.setup + after.other +
                       (n / k) * after.block_fetch + n * after.inner;
  VGPU_EXPECTS(load2 > 0);
  return load1 / load2;
}

double eq3_speedup_asymptotic(const SbpCounts& before, const SbpCounts& after) {
  VGPU_EXPECTS(after.inner > 0);
  return before.inner / after.inner;
}

}  // namespace unroll
