// unroller.hpp - IR-level loop unrolling (Sec. IV-A of the paper).
//
// Unrolls counted loops recorded as LoopInfo by the KernelBuilder, the
// simulator analogue of `#pragma unroll`. Two modes:
//
//  * partial unrolling by a factor U dividing the trip count: the body is
//    replicated U times with the induction-variable increment kept per
//    copy, and one compare+branch retained per U iterations - exactly the
//    overhead shape the paper describes (compare/jump amortized, address
//    add still paid);
//  * full unrolling: every copy gets its induction value as a constant, so
//    after the standard optimization pipeline (vgpu/opt.hpp) the compare,
//    the add, the jump *and* the address add all vanish and the iterator
//    register is freed - the paper's ~18% instruction reduction and its
//    18 -> 17 register step.
#pragma once

#include <cstdint>

#include "vgpu/ir.hpp"

namespace unroll {

struct UnrollResult {
  std::uint32_t factor = 1;
  std::size_t body_instrs_before = 0;  ///< per original iteration
  std::size_t body_instrs_after = 0;   ///< per replicated body
};

/// True if the loop at `loop_index` can be unrolled by `factor`
/// (single-block body, constant trip count, factor divides it).
[[nodiscard]] bool can_unroll(const vgpu::Program& prog, std::size_t loop_index,
                              std::uint32_t factor);

/// Unroll loop `loop_index` by `factor`. factor == trip_count performs full
/// unrolling (and removes the LoopInfo entry); factor == 1 is a no-op.
/// Throws ContractViolation if !can_unroll. Run
/// vgpu::run_standard_pipeline afterwards to realize the instruction-count
/// benefit.
UnrollResult unroll_loop(vgpu::Program& prog, std::size_t loop_index,
                         std::uint32_t factor);

/// Convenience: fully unroll loop `loop_index`.
UnrollResult fully_unroll(vgpu::Program& prog, std::size_t loop_index);

}  // namespace unroll
