// model.hpp - the paper's Eq. 3 instruction-load model.
//
// A blocked O(n^2) kernel decomposes into per-thread setup S (executed once
// per thread), tile fetch B (executed n/K times) and the innermost loop P
// (executed n times). Eq. 3 of the paper:
//
//     speedup = (S1 + n/K * B1 + n * P1) / (S2 + n/K * B2 + n * P2)
//             ~ P1 / P2                       (for large n)
//
// This module extracts S/B/P statically from a Program's region-tagged
// blocks and evaluates both the exact and asymptotic predictions, which the
// unroll_sweep bench compares against simulated cycle counts.
#pragma once

#include <cstdint>

#include "vgpu/ir.hpp"
#include "vgpu/launch.hpp"

namespace unroll {

/// Per-region static instruction counts of one kernel.
struct SbpCounts {
  double setup = 0;        ///< S: instructions executed once per thread
  double block_fetch = 0;  ///< B: instructions executed once per tile
  double inner = 0;        ///< P: instructions executed once per inner iteration
  double other = 0;
};

/// Static extraction: S = instructions in Region::kSetup blocks, B = one
/// pass of the Region::kBlockFetch blocks, P = one iteration of the
/// Region::kInner body. `inner_unroll` divides the inner-body count back to
/// a per-original-iteration figure when the body holds `inner_unroll`
/// replicated iterations.
[[nodiscard]] SbpCounts static_counts(const vgpu::Program& prog,
                                      std::uint32_t inner_unroll = 1);

/// Dynamic extraction from launch statistics: average executed warp
/// instructions per region, normalized per thread / per tile / per inner
/// iteration for a launch of `threads` threads, `tiles` tiles of size K.
[[nodiscard]] SbpCounts dynamic_counts(const vgpu::LaunchStats& stats,
                                       std::uint64_t warps, std::uint64_t tiles,
                                       std::uint64_t inner_iterations);

/// Eq. 3, exact form.
[[nodiscard]] double eq3_speedup(const SbpCounts& before, const SbpCounts& after,
                                 double n, double k);

/// Eq. 3, asymptotic form P1/P2.
[[nodiscard]] double eq3_speedup_asymptotic(const SbpCounts& before,
                                            const SbpCounts& after);

}  // namespace unroll
