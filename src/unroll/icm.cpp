#include "unroll/icm.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vgpu/check.hpp"
#include "vgpu/verify.hpp"

namespace unroll {

using vgpu::Block;
using vgpu::Instruction;
using vgpu::kNoBlock;
using vgpu::kNoPred;
using vgpu::LoopInfo;
using vgpu::Opcode;
using vgpu::Program;
using vgpu::RegId;

namespace {

[[nodiscard]] bool is_pure_alu(const Instruction& in) {
  switch (in.op) {
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFFma:
    case Opcode::kFRcp:
    case Opcode::kFRsqrt:
    case Opcode::kFNeg:
    case Opcode::kFAbs:
    case Opcode::kFMin:
    case Opcode::kFMax:
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMul:
    case Opcode::kIMad:
    case Opcode::kIAddImm:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kIMin:
    case Opcode::kIMax:
    case Opcode::kMov:
    case Opcode::kMovImm:
    case Opcode::kMovSpecial:
    case Opcode::kMovParam:
    case Opcode::kI2F:
    case Opcode::kF2I:
      return true;
    default:
      return false;
  }
}

}  // namespace

IcmResult hoist_invariants(Program& prog, std::size_t loop_index) {
  VGPU_EXPECTS(loop_index < prog.loops.size());
  const LoopInfo& loop = prog.loops[loop_index];
  IcmResult res;
  if (loop.body == kNoBlock) return res;

  // Definition counts across the whole program (a hoisted destination must
  // have a unique definition, otherwise moving it reorders writes).
  std::unordered_map<RegId, std::uint32_t> def_count;
  for (const Block& blk : prog.blocks) {
    for (const Instruction& in : blk.instrs) {
      if (in.dst.valid()) ++def_count[in.dst.reg];
    }
  }

  Block& body = prog.blocks[loop.body];
  Block& pre = prog.blocks[loop.preheader];
  // kClock reads %clock through kMovSpecial: not invariant. Exclude the
  // loop-varying special registers by excluding kMovSpecial kClock.
  bool changed = true;
  while (changed) {
    changed = false;
    // registers defined inside the body (recomputed each round)
    std::unordered_set<RegId> defined_in_body;
    for (const Instruction& in : body.instrs) {
      if (in.dst.valid()) defined_in_body.insert(in.dst.reg);
    }
    for (std::size_t k = 0; k + 1 < body.instrs.size(); ++k) {  // skip terminator
      const Instruction& in = body.instrs[k];
      if (!is_pure_alu(in) || in.guard != kNoPred || !in.dst.valid()) continue;
      if (in.op == Opcode::kMovSpecial &&
          static_cast<vgpu::Special>(in.imm) == vgpu::Special::kClock) {
        continue;
      }
      if (def_count[in.dst.reg] != 1) continue;
      bool invariant = true;
      for (const vgpu::Operand& s : in.src) {
        if (s.valid() && defined_in_body.contains(s.reg)) {
          invariant = false;
          break;
        }
      }
      if (!invariant) continue;
      // hoist: insert before the preheader's terminator
      Instruction moved = in;
      body.instrs.erase(body.instrs.begin() + static_cast<std::ptrdiff_t>(k));
      pre.instrs.insert(pre.instrs.end() - 1, moved);
      ++res.hoisted;
      changed = true;
      break;  // indices shifted; restart the scan
    }
  }
  vgpu::verify(prog);
  return res;
}

IcmResult hoist_all_invariants(Program& prog) {
  IcmResult total;
  for (std::size_t l = 0; l < prog.loops.size(); ++l) {
    total.hoisted += hoist_invariants(prog, l).hoisted;
  }
  return total;
}

}  // namespace unroll
