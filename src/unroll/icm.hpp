// icm.hpp - invariant code motion for counted loops.
//
// The paper applies ICM *manually* to the Gravit inner loop and reports one
// register of pressure saved inside the loop (Sec. IV-A), which combined
// with full unrolling lifts occupancy from 50% to 67%. This pass hoists
// pure, loop-invariant instructions from a single-block loop body into the
// preheader.
#pragma once

#include <cstdint>

#include "vgpu/ir.hpp"

namespace unroll {

struct IcmResult {
  std::uint32_t hoisted = 0;
};

/// Hoist loop-invariant pure instructions (ALU, immediate/parameter moves)
/// out of loop `loop_index`. An instruction is invariant when it is
/// unguarded, its destination has exactly one definition in the program,
/// and none of its operands are defined inside the loop body. Iterates to a
/// fixpoint so chains of invariant computations hoist together.
IcmResult hoist_invariants(vgpu::Program& prog, std::size_t loop_index);

/// Hoist invariants out of every recorded loop (innermost-entry order).
IcmResult hoist_all_invariants(vgpu::Program& prog);

}  // namespace unroll
