#include "unroll/unroller.hpp"

#include <vector>

#include "vgpu/check.hpp"
#include "vgpu/verify.hpp"

namespace unroll {

using vgpu::Block;
using vgpu::BlockId;
using vgpu::Instruction;
using vgpu::kNoBlock;
using vgpu::LoopInfo;
using vgpu::Opcode;
using vgpu::Program;

namespace {

/// The builder terminates a counted-loop body with exactly:
///   iadd.imm iv, iv, step ; setp.lt iv, end ; bra.cond body, exit
/// Returns the index of the iadd.imm (start of the latch) or throws.
std::size_t latch_start(const Block& body, const LoopInfo& loop) {
  VGPU_EXPECTS_MSG(body.instrs.size() >= 3, "loop body too small to have a latch");
  const std::size_t n = body.instrs.size();
  const Instruction& inc = body.instrs[n - 3];
  const Instruction& cmp = body.instrs[n - 2];
  const Instruction& br = body.instrs[n - 1];
  VGPU_EXPECTS_MSG(inc.op == Opcode::kIAddImm && inc.dst.reg == loop.iv &&
                       inc.src[0].reg == loop.iv,
                   "unexpected loop latch shape (induction increment)");
  VGPU_EXPECTS_MSG(cmp.op == Opcode::kSetp, "unexpected loop latch shape (compare)");
  VGPU_EXPECTS_MSG(br.op == Opcode::kBraCond, "unexpected loop latch shape (branch)");
  return n - 3;
}

}  // namespace

bool can_unroll(const Program& prog, std::size_t loop_index, std::uint32_t factor) {
  if (loop_index >= prog.loops.size()) return false;
  const LoopInfo& loop = prog.loops[loop_index];
  if (loop.body == kNoBlock) return false;         // multi-block body
  if (loop.trip_count == 0) return false;          // dynamic trip count
  if (factor == 0 || factor > loop.trip_count) return false;
  if (loop.trip_count % factor != 0) return false;
  if (loop.step != 1 || loop.start != 0) return false;
  return true;
}

UnrollResult unroll_loop(Program& prog, std::size_t loop_index, std::uint32_t factor) {
  VGPU_EXPECTS_MSG(can_unroll(prog, loop_index, factor), "loop is not unrollable");
  const LoopInfo loop = prog.loops[loop_index];
  Block& body = prog.blocks[loop.body];

  UnrollResult res;
  res.factor = factor;
  res.body_instrs_before = body.instrs.size();
  if (factor == 1) {
    res.body_instrs_after = body.instrs.size();
    return res;
  }

  const std::size_t latch = latch_start(body, loop);
  const std::vector<Instruction> user(body.instrs.begin(),
                                      body.instrs.begin() + static_cast<std::ptrdiff_t>(latch));
  const Instruction inc = body.instrs[latch];
  const Instruction cmp = body.instrs[latch + 1];
  const Instruction br = body.instrs[latch + 2];

  std::vector<Instruction> out;
  if (factor == loop.trip_count) {
    // Full unroll: materialize the induction value as a constant before each
    // copy; the optimizer folds it away entirely.
    out.reserve(user.size() * factor + factor + 1);
    for (std::uint32_t k = 0; k < factor; ++k) {
      Instruction set_iv;
      set_iv.op = Opcode::kMovImm;
      set_iv.dst = vgpu::Operand{loop.iv, 0};
      set_iv.imm = loop.start + k * loop.step;
      out.push_back(set_iv);
      out.insert(out.end(), user.begin(), user.end());
    }
    Instruction jump;
    jump.op = Opcode::kBra;
    jump.target = loop.exit;
    out.push_back(jump);
    body.instrs = std::move(out);
    prog.loops.erase(prog.loops.begin() + static_cast<std::ptrdiff_t>(loop_index));
  } else {
    // Partial unroll: replicate body + increment, keep one compare/branch.
    out.reserve((user.size() + 1) * factor + 2);
    for (std::uint32_t k = 0; k < factor; ++k) {
      out.insert(out.end(), user.begin(), user.end());
      out.push_back(inc);
    }
    out.push_back(cmp);
    out.push_back(br);
    body.instrs = std::move(out);
    prog.loops[loop_index].trip_count = loop.trip_count / factor;
    prog.loops[loop_index].step = loop.step * factor;  // per latch pass
  }
  res.body_instrs_after = body.instrs.size();
  vgpu::verify(prog);
  return res;
}

UnrollResult fully_unroll(Program& prog, std::size_t loop_index) {
  VGPU_EXPECTS(loop_index < prog.loops.size());
  return unroll_loop(prog, loop_index, prog.loops[loop_index].trip_count);
}

}  // namespace unroll
