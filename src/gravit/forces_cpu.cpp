#include "gravit/forces_cpu.hpp"

#include <cmath>

#include "vgpu/check.hpp"

namespace gravit {

namespace {

/// One pairwise interaction, written to match the GPU kernel's operation
/// order exactly: r2 via fma chain, rsqrt, inv3 = inv*inv*inv*m, fma
/// accumulate.
inline void accumulate_pair(Vec3 pi, Vec3 pj, float mj, float eps2, Vec3& acc) {
  const float dx = pj.x - pi.x;
  const float dy = pj.y - pi.y;
  const float dz = pj.z - pi.z;
  const float r2 = std::fmaf(dx, dx, std::fmaf(dy, dy, std::fmaf(dz, dz, eps2)));
  const float inv = 1.0f / std::sqrt(r2);
  const float inv3 = inv * inv * inv * mj;
  acc.x = std::fmaf(dx, inv3, acc.x);
  acc.y = std::fmaf(dy, inv3, acc.y);
  acc.z = std::fmaf(dz, inv3, acc.z);
}

}  // namespace

std::vector<Vec3> farfield_direct(const ParticleSet& set, float softening) {
  VGPU_EXPECTS_MSG(softening > 0.0f,
                   "softening must be positive (it nulls the self-pair)");
  const std::size_t n = set.size();
  const float eps2 = softening * softening;
  std::vector<Vec3> acc(n);
  const auto pos = set.pos();
  const auto mass = set.mass();
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 a{};
    for (std::size_t j = 0; j < n; ++j) {
      accumulate_pair(pos[i], pos[j], mass[j], eps2, a);
    }
    acc[i] = a;
  }
  return acc;
}

std::vector<Vec3> farfield_direct_tiled(const ParticleSet& set,
                                        std::uint32_t tile, float softening) {
  VGPU_EXPECTS(tile >= 1);
  VGPU_EXPECTS_MSG(softening > 0.0f,
                   "softening must be positive (it nulls the self-pair)");
  const std::size_t n = set.size();
  const float eps2 = softening * softening;
  std::vector<Vec3> acc(n);
  const auto pos = set.pos();
  const auto mass = set.mass();
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 a{};
    for (std::size_t t0 = 0; t0 < n; t0 += tile) {
      const std::size_t t1 = std::min(n, t0 + tile);
      for (std::size_t j = t0; j < t1; ++j) {
        accumulate_pair(pos[i], pos[j], mass[j], eps2, a);
      }
    }
    acc[i] = a;
  }
  return acc;
}

std::vector<Vec3> nearest_neighbour(const ParticleSet& set, float h,
                                    float strength) {
  const std::size_t n = set.size();
  std::vector<Vec3> acc(n);
  if (h <= 0.0f) return acc;
  const auto pos = set.pos();
  const auto mass = set.mass();
  const float h2 = h * h;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 a{};
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Vec3 d = pos[i] - pos[j];
      const float r2 = d.norm2();
      if (r2 >= h2 || r2 == 0.0f) continue;
      // repulsion ramping up linearly as the pair closes below h
      const float r = std::sqrt(r2);
      const float w = strength * mass[j] * (h - r) / (h * r);
      a += d * w;
    }
    acc[i] = a;
  }
  return acc;
}

std::vector<Vec3> external_accel(const ParticleSet& set,
                                 const ExternalField& field) {
  const std::size_t n = set.size();
  std::vector<Vec3> acc(n, field.uniform);
  if (field.central_mass != 0.0f) {
    const float eps2 = field.central_softening * field.central_softening;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 p = set.pos()[i];
      const float r2 = p.norm2() + eps2;
      const float inv = 1.0f / std::sqrt(r2);
      acc[i] -= p * (field.central_mass * inv * inv * inv);
    }
  }
  return acc;
}

std::vector<Vec3> total_accel(const ParticleSet& set, const ForceModel& model) {
  std::vector<Vec3> acc = farfield_direct(set, model.softening);
  if (model.nn_radius > 0.0f) {
    const std::vector<Vec3> nn =
        nearest_neighbour(set, model.nn_radius, model.nn_strength);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += nn[i];
  }
  const std::vector<Vec3> ext = external_accel(set, model.external);
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += ext[i];
  return acc;
}

double potential_energy(const ParticleSet& set, float softening) {
  const std::size_t n = set.size();
  const double eps2 = static_cast<double>(softening) * softening;
  double u = 0.0;
  const auto pos = set.pos();
  const auto mass = set.mass();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 d = pos[i] - pos[j];
      const double r = std::sqrt(static_cast<double>(d.norm2()) + eps2);
      u -= static_cast<double>(mass[i]) * mass[j] / r;
    }
  }
  return u;
}

}  // namespace gravit
