#include "gravit/simulation.hpp"

#include <chrono>

#include "gravit/barneshut.hpp"
#include "gravit/integrator.hpp"

namespace gravit {

const char* to_string(ForceBackend b) {
  switch (b) {
    case ForceBackend::kCpuDirect: return "cpu-direct";
    case ForceBackend::kCpuBarnesHut: return "cpu-barnes-hut";
    case ForceBackend::kGpuDirect: return "gpu-direct";
  }
  return "?";
}

Simulation::Simulation(ParticleSet initial, SimulationOptions options)
    : set_(std::move(initial)), options_(std::move(options)) {
  if (options_.backend == ForceBackend::kGpuDirect) {
    gpu_ = std::make_unique<FarfieldGpu>(options_.gpu);
  }
}

std::vector<Vec3> Simulation::accel(const ParticleSet& set) const {
  std::vector<Vec3> far;
  switch (options_.backend) {
    case ForceBackend::kCpuDirect:
      far = farfield_direct(set, options_.forces.softening);
      break;
    case ForceBackend::kCpuBarnesHut: {
      Octree tree(set.pos(), set.mass());
      far = tree.accelerations(options_.theta, options_.forces.softening);
      break;
    }
    case ForceBackend::kGpuDirect: {
      FarfieldGpuResult res = gpu_->run_functional(set);
      last_force_cycles_ = res.stats.cycles;
      far = std::move(res.accel);
      break;
    }
  }
  // the remaining Eq. 1 terms are always computed on the host
  if (options_.forces.nn_radius > 0.0f) {
    const std::vector<Vec3> nn = nearest_neighbour(
        set, options_.forces.nn_radius, options_.forces.nn_strength);
    for (std::size_t i = 0; i < far.size(); ++i) far[i] += nn[i];
  }
  const std::vector<Vec3> ext = external_accel(set, options_.forces.external);
  for (std::size_t i = 0; i < far.size(); ++i) far[i] += ext[i];
  return far;
}

std::vector<Vec3> Simulation::far_field() const { return accel(set_); }

void Simulation::step() {
  const auto t0 = std::chrono::steady_clock::now();
  AccelFn fn = [this](const ParticleSet& s) { return accel(s); };
  if (options_.integrator == Integrator::kEuler) {
    step_euler(set_, fn, options_.dt);
  } else {
    step_leapfrog(set_, fn, options_.dt);
  }
  time_ += options_.dt;
  ++steps_;
  if (options_.observer) {
    StepStats st;
    st.step = steps_;
    st.sim_time = time_;
    st.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    st.gpu_cycles = last_force_cycles_;
    st.particles = &set_;
    options_.observer(st);
  }
}

void Simulation::run(std::uint32_t count) {
  for (std::uint32_t k = 0; k < count; ++k) step();
}

}  // namespace gravit
