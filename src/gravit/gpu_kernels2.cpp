#include "gravit/gpu_kernels2.hpp"

#include <array>
#include <bit>

#include "layout/transform.hpp"
#include "vgpu/builder.hpp"
#include "vgpu/check.hpp"
#include "vgpu/opt.hpp"
#include "vgpu/regalloc.hpp"

namespace gravit {

using layout::LoadStep;
using layout::PhysicalLayout;
using vgpu::CmpOp;
using vgpu::KernelBuilder;
using vgpu::MemWidth;
using vgpu::Program;
using vgpu::PVal;
using vgpu::Val;

namespace {

[[nodiscard]] std::uint32_t ilog2(std::uint32_t v) {
  std::uint32_t l = 0;
  while ((1u << (l + 1)) <= v) ++l;
  return l;
}

/// Emit the classic shared-memory tree reduction of `value` across the
/// block; returns after thread 0 stored the block total to out[ctaid].
void emit_block_reduce_and_store(KernelBuilder& kb, Val value, Val out_base,
                                 std::uint32_t block) {
  VGPU_EXPECTS_MSG(std::has_single_bit(block), "reduction needs a power-of-two block");
  Val smem = kb.shared_alloc(block * 4);
  Val tid = kb.tid();
  Val my_slot = kb.iadd(smem, kb.shl(tid, 2));
  kb.st_shared(my_slot, value);
  kb.bar();

  Val stride = kb.var_u32(kb.imm_u32(block / 2));
  kb.for_counted(ilog2(block), [&](Val) {
    PVal active = kb.setp_u32(CmpOp::kLt, tid, stride);
    kb.if_then(active, [&] {
      Val other = kb.iadd(tid, stride);
      Val other_addr = kb.iadd(smem, kb.shl(other, 2));
      Val a = kb.ld_shared_f32(my_slot);
      Val b = kb.ld_shared_f32(other_addr);
      kb.st_shared(my_slot, kb.fadd(a, b));
    });
    kb.bar();
    kb.assign(stride, kb.shr(stride, 1));
  });

  PVal leader = kb.setp_u32_imm(CmpOp::kEq, tid, 0);
  kb.if_then(leader, [&] {
    Val total = kb.ld_shared_f32(smem);
    Val out_addr = kb.imad(kb.ctaid(), kb.imm_u32(4), out_base);
    kb.st_global(out_addr, total);
  });
}

/// Per-group element addresses (only groups containing a requested field).
std::vector<Val> element_addresses(KernelBuilder& kb, const PhysicalLayout& phys,
                                   Val element, std::uint32_t first_param,
                                   const std::array<bool, 7>& wanted) {
  std::vector<Val> addr(phys.groups.size());
  for (std::uint32_t g = 0; g < phys.groups.size(); ++g) {
    bool needed = false;
    for (const std::uint32_t f : phys.groups[g].field_ids) {
      needed = needed || wanted[f];
    }
    if (!needed) continue;
    addr[g] = kb.imad(element, kb.imm_u32(phys.groups[g].stride),
                      kb.param_u32(first_param + g));
  }
  return addr;
}

/// Load the requested record fields through the layout's load plan.
std::array<Val, 7> load_fields(KernelBuilder& kb, const PhysicalLayout& phys,
                               const std::vector<Val>& elem_addr,
                               const std::array<bool, 7>& wanted) {
  std::array<Val, 7> fields{};
  for (const LoadStep& step : phys.load_plan) {
    if (!elem_addr[step.group].valid()) continue;
    const layout::ArrayGroup& group = phys.groups[step.group];
    bool covers = false;
    for (std::uint8_t c = 0; c < vgpu::width_words(step.width); ++c) {
      const std::uint32_t w = step.offset / 4 + c;
      if (w < group.field_ids.size() && wanted[group.field_ids[w]]) covers = true;
    }
    if (!covers) continue;
    Val v = kb.ld_global_vec(elem_addr[step.group], step.width, vgpu::VType::kF32,
                             step.offset);
    for (std::uint8_t c = 0; c < vgpu::width_words(step.width); ++c) {
      const std::uint32_t w = step.offset / 4 + c;
      if (w < group.field_ids.size()) {
        fields[group.field_ids[w]] = kb.comp(v, c);
      }
    }
  }
  for (std::size_t f = 0; f < 7; ++f) {
    VGPU_EXPECTS_MSG(!wanted[f] || fields[f].valid(),
                     "layout does not cover a requested field");
  }
  return fields;
}

/// Store one record field through the layout (scalar store at the field's
/// offset within its group).
void store_field(KernelBuilder& kb, const PhysicalLayout& phys,
                 const std::vector<Val>& elem_addr, std::uint32_t field_id,
                 Val value) {
  for (std::uint32_t g = 0; g < phys.groups.size(); ++g) {
    const auto& ids = phys.groups[g].field_ids;
    for (std::uint32_t k = 0; k < ids.size(); ++k) {
      if (ids[k] != field_id) continue;
      VGPU_EXPECTS_MSG(elem_addr[g].valid(), "group address missing for store");
      kb.st_global(elem_addr[g], value, 4 * k);
      return;
    }
  }
  throw vgpu::ContractViolation("field not present in layout");
}

Program finalize(KernelBuilder&& kb) {
  Program prog = std::move(kb).finish();
  vgpu::run_standard_pipeline(prog);
  vgpu::allocate_registers(prog);
  return prog;
}

}  // namespace

Program make_block_sum_kernel(std::uint32_t block) {
  KernelBuilder kb("block_sum", 2);
  Val i = kb.iadd(kb.imul(kb.ctaid(), kb.ntid()), kb.tid());
  Val v = kb.ld_global_f32(kb.imad(i, kb.imm_u32(4), kb.param_u32(0)));
  emit_block_reduce_and_store(kb, v, kb.param_u32(1), block);
  return finalize(std::move(kb));
}

double gpu_sum(vgpu::Device& dev, vgpu::Buffer data, std::uint32_t n,
               std::uint32_t block) {
  VGPU_EXPECTS(n % block == 0);
  const Program prog = make_block_sum_kernel(block);
  const std::uint32_t blocks = n / block;
  vgpu::Buffer partials = dev.malloc_n<float>(blocks);
  const std::uint32_t params[2] = {data.addr, partials.addr};
  dev.launch_functional(prog, vgpu::LaunchConfig{blocks, block}, params);
  std::vector<float> host(blocks);
  dev.download<float>(host, partials);
  double total = 0.0;
  for (const float p : host) total += p;
  return total;
}

Program make_kinetic_kernel(const PhysicalLayout& phys, std::uint32_t block) {
  const auto ngroups = static_cast<std::uint32_t>(phys.groups.size());
  KernelBuilder kb("kinetic_" + std::string(layout::to_string(phys.kind)),
                   ngroups + 1);
  Val i = kb.iadd(kb.imul(kb.ctaid(), kb.ntid()), kb.tid());
  const std::array<bool, 7> wanted = {false, false, false, true, true, true, true};
  const std::vector<Val> addr = element_addresses(kb, phys, i, 0, wanted);
  const std::array<Val, 7> f = load_fields(kb, phys, addr, wanted);
  Val v2 = kb.fmul(f[3], f[3]);
  v2 = kb.ffma(f[4], f[4], v2);
  v2 = kb.ffma(f[5], f[5], v2);
  Val e = kb.fmul(kb.fmul(kb.imm_f32(0.5f), f[6]), v2);
  emit_block_reduce_and_store(kb, e, kb.param_u32(ngroups), block);
  return finalize(std::move(kb));
}

Program make_integrate_kernel(const PhysicalLayout& phys, std::uint32_t block) {
  (void)block;
  const auto ngroups = static_cast<std::uint32_t>(phys.groups.size());
  // params: group bases..., accel base, n_pad (elements), dt bits
  KernelBuilder kb("integrate_" + std::string(layout::to_string(phys.kind)),
                   ngroups + 3);
  Val i = kb.iadd(kb.imul(kb.ctaid(), kb.ntid()), kb.tid());
  const std::array<bool, 7> wanted = {true, true, true, true, true, true, false};
  const std::vector<Val> addr = element_addresses(kb, phys, i, 0, wanted);
  const std::array<Val, 7> f = load_fields(kb, phys, addr, wanted);

  Val accel = kb.param_u32(ngroups);
  Val npad = kb.param_u32(ngroups + 1);
  Val dt = kb.param_f32(ngroups + 2);
  Val ax = kb.ld_global_f32(kb.imad(i, kb.imm_u32(4), accel));
  Val ay = kb.ld_global_f32(kb.imad(kb.iadd(npad, i), kb.imm_u32(4), accel));
  Val az = kb.ld_global_f32(
      kb.imad(kb.iadd(kb.iadd(npad, npad), i), kb.imm_u32(4), accel));

  Val vx = kb.ffma(ax, dt, f[3]);
  Val vy = kb.ffma(ay, dt, f[4]);
  Val vz = kb.ffma(az, dt, f[5]);
  Val px = kb.ffma(vx, dt, f[0]);
  Val py = kb.ffma(vy, dt, f[1]);
  Val pz = kb.ffma(vz, dt, f[2]);

  store_field(kb, phys, addr, 3, vx);
  store_field(kb, phys, addr, 4, vy);
  store_field(kb, phys, addr, 5, vz);
  store_field(kb, phys, addr, 0, px);
  store_field(kb, phys, addr, 1, py);
  store_field(kb, phys, addr, 2, pz);
  return finalize(std::move(kb));
}

GpuDiagnostics gpu_kinetic_energy(const ParticleSet& set,
                                  layout::SchemeKind scheme,
                                  std::uint32_t block) {
  const PhysicalLayout phys = plan_layout(layout::gravit_record(), scheme);
  const Program prog = make_kinetic_kernel(phys, block);

  ParticleSet padded = set;
  const auto n_pad = static_cast<std::uint32_t>(
      (set.size() + block - 1) / block * block);
  padded.pad_to(n_pad);
  const std::vector<float> flat = padded.flatten();
  const std::vector<std::byte> image = layout::pack(phys, flat, n_pad);

  vgpu::Device dev;
  vgpu::Buffer img = dev.malloc(image.size());
  dev.memcpy_h2d(img, image);
  const std::uint32_t blocks = n_pad / block;
  vgpu::Buffer partials = dev.malloc_n<float>(blocks);
  std::vector<std::uint32_t> params;
  for (const std::uint64_t base : phys.group_bases(n_pad)) {
    params.push_back(img.addr + static_cast<std::uint32_t>(base));
  }
  params.push_back(partials.addr);

  GpuDiagnostics out;
  out.stats = dev.launch_functional(prog, vgpu::LaunchConfig{blocks, block}, params);
  std::vector<float> host(blocks);
  dev.download<float>(host, partials);
  for (const float p : host) out.kinetic += p;
  return out;
}

}  // namespace gravit
