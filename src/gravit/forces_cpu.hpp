// forces_cpu.hpp - the serial CPU force paths.
//
// Implements the three force terms of the paper's Eq. 1,
//     Force = F_E + F_NN + F_FF,
// on the host: the O(n^2) far-field sum (the term the paper offloads to
// the GPU and the 87x baseline), an optional nearest-neighbour softening
// correction, and external forces (central attractor / uniform field).
// All math is single precision to match the device path bit-for-bit in
// structure (identical operation order per pair).
#pragma once

#include <span>
#include <vector>

#include "gravit/particle.hpp"

namespace gravit {

/// Plummer softening used everywhere (avoids the singular 1/r^2 and the
/// i == j branch: a particle exerts zero force on itself).
inline constexpr float kDefaultSoftening = 0.025f;

/// Far-field accelerations by direct summation, O(n^2). Matches the GPU
/// kernel's operation order (dx*inv3 fma accumulation) so results agree to
/// float rounding.
[[nodiscard]] std::vector<Vec3> farfield_direct(const ParticleSet& set,
                                                float softening = kDefaultSoftening);

/// Tiled direct summation: identical math to farfield_direct but walks the
/// source particles in tiles of `tile` (the GPU kernel's summation order),
/// used to validate exact agreement with the device path.
[[nodiscard]] std::vector<Vec3> farfield_direct_tiled(
    const ParticleSet& set, std::uint32_t tile,
    float softening = kDefaultSoftening);

/// Nearest-neighbour repulsive correction: for pairs closer than `h`, add a
/// short-range repulsion so close encounters stay bounded (Gravit's "NN"
/// term). O(n^2) reference implementation.
[[nodiscard]] std::vector<Vec3> nearest_neighbour(const ParticleSet& set, float h,
                                                  float strength = 1.0f);

/// External force field descriptor: uniform gravity plus an optional
/// central attractor at the origin.
struct ExternalField {
  Vec3 uniform{};
  float central_mass = 0.0f;
  float central_softening = 0.05f;
};

[[nodiscard]] std::vector<Vec3> external_accel(const ParticleSet& set,
                                               const ExternalField& field);

/// Eq. 1 assembled: far field + nearest neighbour + external.
struct ForceModel {
  float softening = kDefaultSoftening;
  float nn_radius = 0.0f;  ///< 0 disables the NN term
  float nn_strength = 1.0f;
  ExternalField external;
};

[[nodiscard]] std::vector<Vec3> total_accel(const ParticleSet& set,
                                            const ForceModel& model);

/// Gravitational potential energy (pairwise, softened), for diagnostics.
[[nodiscard]] double potential_energy(const ParticleSet& set,
                                      float softening = kDefaultSoftening);

}  // namespace gravit
