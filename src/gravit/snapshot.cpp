#include "gravit/snapshot.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "vgpu/check.hpp"

namespace gravit {

namespace {
constexpr char kMagic[4] = {'G', 'R', 'V', '1'};
}

void write_snapshot(const ParticleSet& set, std::ostream& os) {
  os.write(kMagic, 4);
  const std::uint64_t n = set.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  const std::vector<float> flat = set.flatten();
  os.write(reinterpret_cast<const char*>(flat.data()),
           static_cast<std::streamsize>(flat.size() * sizeof(float)));
  VGPU_ENSURES_MSG(os.good(), "snapshot write failed");
}

ParticleSet read_snapshot(std::istream& is) {
  char magic[4] = {};
  is.read(magic, 4);
  VGPU_EXPECTS_MSG(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                   "not a GRV1 snapshot");
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  VGPU_EXPECTS_MSG(is.good() && n < (1ull << 32), "corrupt snapshot header");
  std::vector<float> flat(n * 7);
  is.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(flat.size() * sizeof(float)));
  VGPU_EXPECTS_MSG(is.good(), "truncated snapshot");
  return ParticleSet::unflatten(flat);
}

void save_snapshot(const ParticleSet& set, const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  VGPU_EXPECTS_MSG(os.is_open(), "cannot open snapshot for writing: " + path.string());
  write_snapshot(set, os);
}

ParticleSet load_snapshot(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  VGPU_EXPECTS_MSG(is.is_open(), "cannot open snapshot: " + path.string());
  return read_snapshot(is);
}

void export_csv(const ParticleSet& set, const std::filesystem::path& path) {
  std::ofstream os(path);
  VGPU_EXPECTS_MSG(os.is_open(), "cannot open csv for writing: " + path.string());
  os << "px,py,pz,vx,vy,vz,mass\n";
  for (std::size_t k = 0; k < set.size(); ++k) {
    const Vec3 p = set.pos()[k];
    const Vec3 v = set.vel()[k];
    os << p.x << ',' << p.y << ',' << p.z << ',' << v.x << ',' << v.y << ','
       << v.z << ',' << set.mass()[k] << '\n';
  }
  VGPU_ENSURES_MSG(os.good(), "csv write failed");
}

void TrajectoryRecorder::record(double time, const ParticleSet& set,
                                float softening) {
  Sample s;
  s.time = time;
  s.energy = energy(set, softening);
  s.momentum = total_momentum(set);
  s.angular_momentum = total_angular_momentum(set);
  s.com = center_of_mass(set);
  samples_.push_back(s);
}

double TrajectoryRecorder::max_energy_drift() const {
  if (samples_.size() < 2) return 0.0;
  const double e0 = samples_.front().energy.total();
  double drift = 0.0;
  for (const Sample& s : samples_) {
    drift = std::max(drift, std::abs(s.energy.total() - e0));
  }
  return drift;
}

double TrajectoryRecorder::max_momentum_drift() const {
  if (samples_.size() < 2) return 0.0;
  const Vec3 p0 = samples_.front().momentum;
  double drift = 0.0;
  for (const Sample& s : samples_) {
    drift = std::max(drift, static_cast<double>((s.momentum - p0).norm()));
  }
  return drift;
}

void TrajectoryRecorder::export_csv(const std::filesystem::path& path) const {
  std::ofstream os(path);
  VGPU_EXPECTS_MSG(os.is_open(), "cannot open csv for writing: " + path.string());
  os << "time,kinetic,potential,total,px,py,pz,lx,ly,lz\n";
  for (const Sample& s : samples_) {
    os << s.time << ',' << s.energy.kinetic << ',' << s.energy.potential << ','
       << s.energy.total() << ',' << s.momentum.x << ',' << s.momentum.y << ','
       << s.momentum.z << ',' << s.angular_momentum.x << ','
       << s.angular_momentum.y << ',' << s.angular_momentum.z << '\n';
  }
  VGPU_ENSURES_MSG(os.good(), "csv write failed");
}

}  // namespace gravit
