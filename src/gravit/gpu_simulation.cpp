#include "gravit/gpu_simulation.hpp"

#include <bit>
#include <chrono>

#include "layout/transform.hpp"
#include "vgpu/check.hpp"

namespace gravit {

GpuSimulation::GpuSimulation(const ParticleSet& initial,
                             GpuSimulationOptions options)
    : options_(std::move(options)),
      force_(make_farfield_kernel(options_.kernel)),
      integrate_(make_integrate_kernel(force_.phys, options_.kernel.block)),
      phys_(force_.phys),
      dev_(vgpu::g80_spec(), options_.device_memory) {
  VGPU_EXPECTS_MSG(!initial.empty(), "empty particle set");
  const std::uint32_t block = options_.kernel.block;
  n_ = static_cast<std::uint32_t>(initial.size());
  n_pad_ = (n_ + block - 1) / block * block;

  ParticleSet padded = initial;
  padded.pad_to(n_pad_);
  const std::vector<float> flat = padded.flatten();
  const std::vector<std::byte> img = layout::pack(phys_, flat, n_pad_);
  image_ = dev_.malloc(img.size());
  dev_.memcpy_h2d(image_, img);
  accel_ = dev_.malloc(static_cast<std::size_t>(force_.output_bytes(n_pad_)));

  for (const std::uint64_t base : phys_.group_bases(n_pad_)) {
    force_params_.push_back(image_.addr + static_cast<std::uint32_t>(base));
    integrate_params_.push_back(image_.addr + static_cast<std::uint32_t>(base));
  }
  force_params_.push_back(accel_.addr);
  force_params_.push_back(n_pad_ / block);  // n_tiles
  integrate_params_.push_back(accel_.addr);
  integrate_params_.push_back(n_pad_);
  integrate_params_.push_back(std::bit_cast<std::uint32_t>(options_.dt));
}

void GpuSimulation::step() {
  const auto t0 = std::chrono::steady_clock::now();
  const vgpu::LaunchConfig cfg{n_pad_ / options_.kernel.block,
                               options_.kernel.block};
  if (options_.timed) {
    vgpu::TimingOptions topt;
    topt.driver = options_.driver;
    if (options_.mode == GpuExecMode::kPersistent) {
      // The resident kernel launches once; each step is one iteration of
      // its on-device loop, paying a grid-wide sync per phase instead of a
      // driver launch. The simulation itself is identical, so cycles match
      // kPerStepLaunch bit for bit.
      if (steps_ == 0) {
        dev_.advance_timeline(dev_.spec().launch_overhead_ms());
      }
      force_stats_ =
          dev_.launch_timed_resident(force_.prog, cfg, force_params_, topt);
      (void)dev_.launch_timed_resident(integrate_, cfg, integrate_params_,
                                       topt);
    } else {
      force_stats_ = dev_.launch_timed(force_.prog, cfg, force_params_, topt);
      (void)dev_.launch_timed(integrate_, cfg, integrate_params_, topt);
    }
  } else {
    force_stats_ =
        dev_.launch_functional(force_.prog, cfg, force_params_, options_.driver);
    (void)dev_.launch_functional(integrate_, cfg, integrate_params_,
                                 options_.driver);
  }
  time_ += options_.dt;
  ++steps_;
  if (options_.observer) {
    StepStats st;
    st.step = steps_;
    st.sim_time = time_;
    st.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    st.gpu_cycles = force_stats_.cycles;
    options_.observer(st);
  }
}

void GpuSimulation::run(std::uint32_t steps) {
  for (std::uint32_t k = 0; k < steps; ++k) step();
}

ParticleSet GpuSimulation::download() const {
  std::vector<std::byte> img(phys_.bytes(n_pad_));
  dev_.memcpy_d2h(img, image_);
  std::vector<float> flat(static_cast<std::size_t>(n_pad_) * 7);
  layout::unpack(phys_, img, flat, n_pad_);
  ParticleSet padded = ParticleSet::unflatten(flat);
  ParticleSet out;
  for (std::uint32_t k = 0; k < n_; ++k) {
    out.push_back(padded.pos()[k], padded.vel()[k], padded.mass()[k]);
  }
  return out;
}

}  // namespace gravit
