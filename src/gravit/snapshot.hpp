// snapshot.hpp - particle-set persistence and run recording.
//
// A binary snapshot format (versioned, byte-exact round trip) plus CSV
// export for plotting, and a TrajectoryRecorder that logs conservation
// diagnostics per step - the bookkeeping Gravit-the-application ships with.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "gravit/diagnostics.hpp"
#include "gravit/particle.hpp"

namespace gravit {

/// Write/read the binary snapshot format (magic "GRV1", u64 count, then
/// 7 floats per particle). Round trips bit-exactly.
void save_snapshot(const ParticleSet& set, const std::filesystem::path& path);
[[nodiscard]] ParticleSet load_snapshot(const std::filesystem::path& path);

/// Stream versions (used by the file functions; handy for tests).
void write_snapshot(const ParticleSet& set, std::ostream& os);
[[nodiscard]] ParticleSet read_snapshot(std::istream& is);

/// CSV export: header + one row per particle (px,py,pz,vx,vy,vz,mass).
void export_csv(const ParticleSet& set, const std::filesystem::path& path);

/// Records per-step diagnostics for later analysis/plotting.
class TrajectoryRecorder {
 public:
  struct Sample {
    double time = 0.0;
    EnergyReport energy;
    Vec3 momentum;
    Vec3 angular_momentum;
    Vec3 com;
  };

  /// Capture the current state (energy is O(n^2): sample sparingly).
  void record(double time, const ParticleSet& set,
              float softening = kDefaultSoftening);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] double max_energy_drift() const;
  [[nodiscard]] double max_momentum_drift() const;

  /// time,kinetic,potential,total,px,py,pz,lx,ly,lz rows.
  void export_csv(const std::filesystem::path& path) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace gravit
