// gpu_runner.hpp - host-side orchestration of the far-field GPU kernel.
//
// Reproduces the paper's measurement protocol for Fig. 12: "we ran the
// application and measured the overall runtime from copying the data to the
// device, through the kernel invocation till after copying the results
// back". run_timed() reports that window in milliseconds; run_functional()
// returns exact accelerations for physics use and validation.
//
// Large problems are timed with tile sampling (DESIGN.md section 2): the
// kernel's outer loop is perfectly periodic, so cycles are measured at two
// reduced tile counts on a bounded number of block waves and extrapolated
// affinely - validated against full simulation at small n in
// tests/gravit/gpu_farfield_test.cpp.
#pragma once

#include <optional>
#include <vector>

#include "gravit/kernels.hpp"
#include "gravit/particle.hpp"
#include "vgpu/device.hpp"

namespace gravit {

struct FarfieldGpuOptions {
  KernelOptions kernel;
  vgpu::DriverModel driver = vgpu::DriverModel::kCuda10;
  /// Tile sampling for timed runs: simulate t/2 and t tiles and extrapolate
  /// when the real tile count exceeds `sample_tiles`; 0 disables sampling.
  std::uint32_t sample_tiles = 16;
  /// Cap on simulated block waves for timed runs (0 = simulate all blocks).
  std::uint32_t max_waves = 2;
  /// Host threads for the timing executor (forwarded to
  /// TimingOptions::threads; results are bit-identical for any value).
  std::uint32_t sim_threads = 1;
  /// SMs to simulate (forwarded to TimingOptions::sim_sms; 0 = all). DRAM
  /// bandwidth scales proportionally, so per-SM behaviour matches.
  std::uint32_t sim_sms = 0;
  /// Device memory to provision.
  std::size_t device_memory = 512u * 1024 * 1024;
};

struct FarfieldGpuResult {
  std::vector<Vec3> accel;  ///< filled by functional runs only
  vgpu::LaunchStats stats;  ///< last (largest) launch
  double cycles = 0.0;      ///< estimated full-kernel cycles
  double kernel_ms = 0.0;
  double end_to_end_ms = 0.0;  ///< H2D copy + kernel + D2H copy (Fig. 12)
  bool sampled = false;
  std::uint32_t regs_per_thread = 0;
  double occupancy = 0.0;

  /// Raw tile-sampling points (sampled runs only): cycles at t1 and t2
  /// tiles over `stats.blocks_simulated` blocks. Benches reuse these to
  /// derive other problem sizes without re-simulating (the samples do not
  /// depend on n).
  double sample_t1 = 0, sample_c1 = 0, sample_t2 = 0, sample_c2 = 0;
};

/// A multi-step run of the Fig. 12 protocol (upload inputs, kernel,
/// download results - every step), timed either strictly serially or as a
/// double-buffered pipeline over the device's async streams: the upload of
/// step i+1's inputs and the download of step i-1's results hide under
/// step i's kernel (one DMA engine, event-ordered buffer reuse).
struct PipelineResult {
  double total_ms = 0.0;   ///< critical path of all steps (timeline delta)
  double h2d_ms = 0.0;     ///< modeled per-step upload leg
  double kernel_ms = 0.0;  ///< per-step kernel leg (excl. launch overhead)
  double d2h_ms = 0.0;     ///< modeled per-step download leg
  std::uint64_t kernel_cycles = 0;  ///< per-step cycles (same every step)
  /// Resolved stream spans of the last sync (overlap mode only).
  std::vector<vgpu::AsyncSpan> spans;
};

class FarfieldGpu {
 public:
  explicit FarfieldGpu(FarfieldGpuOptions options);

  /// Exact accelerations (functional execution; no timing).
  [[nodiscard]] FarfieldGpuResult run_functional(const ParticleSet& set);

  /// Timed execution with the paper's end-to-end window. Accelerations are
  /// only returned when no sampling was needed.
  [[nodiscard]] FarfieldGpuResult run_timed(const ParticleSet& set);

  /// Timed multi-step protocol, fully simulated (no sampling, so keep the
  /// problem small). `overlap` switches between the serial protocol and the
  /// double-buffered async pipeline; kernel cycles are bit-identical
  /// either way. `h2d_chunks` splits each upload into that many chunked
  /// async copies (transfer staging granularity; 1 = whole image).
  [[nodiscard]] PipelineResult run_timed_steps(const ParticleSet& set,
                                               std::uint32_t steps,
                                               bool overlap,
                                               std::uint32_t h2d_chunks = 1);

  [[nodiscard]] const BuiltKernel& kernel() const { return kernel_; }
  [[nodiscard]] const FarfieldGpuOptions& options() const { return options_; }

 private:
  struct Uploaded {
    vgpu::Buffer image;
    vgpu::Buffer accel_out;
    std::vector<std::uint32_t> params;
    std::uint32_t n_pad = 0;
    std::uint32_t n_tiles = 0;
  };
  Uploaded upload(const ParticleSet& set, vgpu::Device& dev) const;

  FarfieldGpuOptions options_;
  BuiltKernel kernel_;
};

}  // namespace gravit
