// gpu_kernels2.hpp - the rest of the simulation step on the device:
// block-tree reductions (diagnostics) and the leapfrog update kernel.
//
// These kernels matter for the paper's Sec. IV grouping argument: the force
// kernel only ever touches the hot fields (positions + mass), while the
// integration kernel is the consumer of the cold velocity fields. Under
// SoAoaS the two kernels each stream exactly the arrays they need; under
// AoS both drag the full 28-byte record through the bus
// (bench/ablation_hotcold measures the difference).
#pragma once

#include <cstdint>
#include <span>

#include "gravit/kernels.hpp"
#include "gravit/particle.hpp"
#include "vgpu/device.hpp"

namespace gravit {

/// Block-level tree reduction: out[block] = sum of in[block*K .. block*K+K).
/// params: [in_addr, out_addr]. Input length must be a block multiple.
[[nodiscard]] vgpu::Program make_block_sum_kernel(std::uint32_t block = 128);

/// Sum a device float array with the reduction kernel (partials summed on
/// the host, the classic two-phase scheme). `n` must be a block multiple.
[[nodiscard]] double gpu_sum(vgpu::Device& dev, vgpu::Buffer data,
                             std::uint32_t n, std::uint32_t block = 128);

/// Kinetic-energy kernel: per-thread 0.5 * m * |v|^2 through the layout
/// (reads the *cold* velocity group + mass), then block-reduced.
/// params: [group bases..., partials_out]. One output per block.
[[nodiscard]] vgpu::Program make_kinetic_kernel(const layout::PhysicalLayout& phys,
                                                std::uint32_t block = 128);

/// Leapfrog kick-drift update kernel: v += a*dt; p += v*dt, reading the
/// acceleration arrays (SoA ax/ay/az) and updating positions and velocities
/// in the particle layout. params: [group bases..., accel_addr, n_pad_words,
/// dt_bits]. Touches every field of the record - the workload the
/// access-frequency grouping (Sec. IV step 1) is designed around.
[[nodiscard]] vgpu::Program make_integrate_kernel(const layout::PhysicalLayout& phys,
                                                  std::uint32_t block = 128);

/// Device-side kinetic energy of a packed particle image.
struct GpuDiagnostics {
  double kinetic = 0.0;
  vgpu::LaunchStats stats;
};

[[nodiscard]] GpuDiagnostics gpu_kinetic_energy(const ParticleSet& set,
                                                layout::SchemeKind scheme,
                                                std::uint32_t block = 128);

}  // namespace gravit
