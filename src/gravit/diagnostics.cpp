#include "gravit/diagnostics.hpp"

namespace gravit {

double kinetic_energy(const ParticleSet& set) {
  double e = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    e += 0.5 * static_cast<double>(set.mass()[i]) * set.vel()[i].norm2();
  }
  return e;
}

EnergyReport energy(const ParticleSet& set, float softening) {
  return EnergyReport{kinetic_energy(set), potential_energy(set, softening)};
}

Vec3 total_momentum(const ParticleSet& set) {
  Vec3 p{};
  for (std::size_t i = 0; i < set.size(); ++i) {
    p += set.vel()[i] * set.mass()[i];
  }
  return p;
}

Vec3 total_angular_momentum(const ParticleSet& set) {
  Vec3 l{};
  for (std::size_t i = 0; i < set.size(); ++i) {
    l += cross(set.pos()[i], set.vel()[i] * set.mass()[i]);
  }
  return l;
}

Vec3 center_of_mass(const ParticleSet& set) {
  Vec3 c{};
  float m = 0.0f;
  for (std::size_t i = 0; i < set.size(); ++i) {
    c += set.pos()[i] * set.mass()[i];
    m += set.mass()[i];
  }
  return m > 0.0f ? c * (1.0f / m) : c;
}

}  // namespace gravit
