#include "gravit/particle.hpp"

namespace gravit {

std::vector<float> ParticleSet::flatten() const {
  std::vector<float> out;
  out.reserve(size() * 7);
  for (std::size_t k = 0; k < size(); ++k) {
    out.push_back(pos_[k].x);
    out.push_back(pos_[k].y);
    out.push_back(pos_[k].z);
    out.push_back(vel_[k].x);
    out.push_back(vel_[k].y);
    out.push_back(vel_[k].z);
    out.push_back(mass_[k]);
  }
  return out;
}

ParticleSet ParticleSet::unflatten(std::span<const float> data) {
  VGPU_EXPECTS_MSG(data.size() % 7 == 0, "flattened stream must be 7 floats/particle");
  ParticleSet set;
  for (std::size_t k = 0; k < data.size(); k += 7) {
    set.push_back(Vec3{data[k], data[k + 1], data[k + 2]},
                  Vec3{data[k + 3], data[k + 4], data[k + 5]}, data[k + 6]);
  }
  return set;
}

}  // namespace gravit
