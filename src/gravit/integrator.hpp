// integrator.hpp - time integration.
//
// Gravit advances its particles with simple Newtonian stepping; we provide
// the original forward Euler plus the symplectic leapfrog (kick-drift-kick)
// whose bounded energy drift the physics tests rely on.
#pragma once

#include <functional>
#include <vector>

#include "gravit/particle.hpp"

namespace gravit {

/// Computes accelerations for the current state.
using AccelFn = std::function<std::vector<Vec3>(const ParticleSet&)>;

/// Forward Euler: v += a dt; x += v dt. First order, Gravit's original.
void step_euler(ParticleSet& set, const AccelFn& accel, float dt);

/// Leapfrog (kick-drift-kick): second order, symplectic.
/// `accel_now` may pass cached accelerations for the current positions to
/// avoid one force evaluation; returns the accelerations at the new
/// positions for reuse.
std::vector<Vec3> step_leapfrog(ParticleSet& set, const AccelFn& accel, float dt,
                                const std::vector<Vec3>* accel_now = nullptr);

}  // namespace gravit
