#include "gravit/kernels.hpp"

#include <utility>

#include "unroll/icm.hpp"
#include "unroll/unroller.hpp"
#include "vgpu/builder.hpp"
#include "vgpu/check.hpp"
#include "vgpu/opt.hpp"
#include "vgpu/regalloc.hpp"
#include "vgpu/verify.hpp"

namespace gravit {

using layout::LoadStep;
using layout::PhysicalLayout;
using vgpu::KernelBuilder;
using vgpu::MemWidth;
using vgpu::Program;
using vgpu::Region;
using vgpu::Val;

namespace {

/// Loads the four hot fields (px, py, pz, mass) of element `elem_addrs[g] +
/// elem` through the layout's load plan and returns them as four scalar
/// values in that order. Cold-field loads that the plan bundles in (AoS
/// reads the whole record) are emitted too; the optimizer removes scalar
/// loads whose values are unused, mirroring what nvcc does to dead loads.
struct HotFields {
  Val px, py, pz, mass;
};

/// Groups containing at least one hot field (px/py/pz/mass); the kernel
/// only materializes element addresses for these - cold-only groups
/// (velocities under SoA/SoAoaS) are never touched by the force kernel.
std::vector<bool> hot_groups(const PhysicalLayout& phys) {
  std::vector<bool> hot(phys.groups.size(), false);
  for (std::size_t g = 0; g < phys.groups.size(); ++g) {
    for (const std::uint32_t f : phys.groups[g].field_ids) {
      if (f <= 2 || f == 6) hot[g] = true;  // px,py,pz,mass
    }
  }
  return hot;
}

HotFields load_hot_fields(KernelBuilder& kb, const PhysicalLayout& phys,
                          const std::vector<Val>& elem_addr,
                          bool via_texture = false) {
  // field ids in gravit_record(): 0=px 1=py 2=pz 3..5=v* 6=mass
  std::array<Val, 7> fields{};
  for (const LoadStep& step : phys.load_plan) {
    if (!elem_addr[step.group].valid()) continue;  // cold-only group
    const layout::ArrayGroup& group = phys.groups[step.group];
    Val v = via_texture
                ? kb.ld_tex_vec(elem_addr[step.group], step.width,
                                vgpu::VType::kF32, step.offset)
                : kb.ld_global_vec(elem_addr[step.group], step.width,
                                   vgpu::VType::kF32, step.offset);
    // map the loaded words back to record fields
    for (std::uint8_t c = 0; c < vgpu::width_words(step.width); ++c) {
      const std::uint32_t word_in_elem = step.offset / 4 + c;
      if (word_in_elem < group.field_ids.size()) {
        fields[group.field_ids[word_in_elem]] = kb.comp(v, c);
      }
    }
  }
  VGPU_EXPECTS_MSG(fields[0].valid() && fields[1].valid() && fields[2].valid() &&
                       fields[6].valid(),
                   "layout does not cover the hot fields");
  return HotFields{fields[0], fields[1], fields[2], fields[6]};
}

}  // namespace

std::string kernel_label(const KernelOptions& options) {
  std::string label = layout::to_string(options.scheme);
  if (options.unroll > 1) {
    label += "+unroll";
    label += std::to_string(options.unroll);
  }
  if (options.icm) label += "+icm";
  if (!options.use_shared_tiles) label += "+notile";
  if (options.use_texture_fetches) label += "+tex";
  if (options.max_regs != 0) {
    label += "+maxreg";
    label += std::to_string(options.max_regs);
  }
  return label;
}

BuiltKernel make_farfield_kernel(const KernelOptions& options) {
  VGPU_EXPECTS(options.block >= 32 && options.block % 32 == 0);
  VGPU_EXPECTS(options.unroll >= 1 && options.block % options.unroll == 0);

  PhysicalLayout phys = plan_layout(layout::gravit_record(), options.scheme);
  const auto ngroups = static_cast<std::uint32_t>(phys.groups.size());
  const std::uint32_t k_tile = options.block;

  KernelBuilder kb(std::string("farfield_") + kernel_label(options),
                   ngroups + 2);

  // ---- S: per-thread setup ------------------------------------------------
  kb.region(Region::kSetup);
  Val tid = kb.tid();
  Val i = kb.iadd(kb.imul(kb.ctaid(), kb.ntid()), tid);
  Val smem = kb.shared_alloc(k_tile * 16);

  // own position: element i through the layout (hot groups only)
  const std::vector<bool> hot = hot_groups(phys);
  std::vector<Val> my_addr(ngroups);
  for (std::uint32_t g = 0; g < ngroups; ++g) {
    if (!hot[g]) continue;
    my_addr[g] = kb.imad(i, kb.imm_u32(phys.groups[g].stride), kb.param_u32(g));
  }
  const HotFields me = load_hot_fields(kb, phys, my_addr);
  Val px = kb.var_f32(me.px);
  Val py = kb.var_f32(me.py);
  Val pz = kb.var_f32(me.pz);

  Val ax = kb.var_f32(kb.imm_f32(0.0f));
  Val ay = kb.var_f32(kb.imm_f32(0.0f));
  Val az = kb.var_f32(kb.imm_f32(0.0f));

  // source walk addresses, strength-reduced (advance by the stride instead
  // of recomputing from an index - fewer live registers). With tiling each
  // thread stages element tile*K + tid; without tiling every thread walks
  // all elements from 0.
  std::vector<Val> tile_addr(ngroups);
  for (std::uint32_t g = 0; g < ngroups; ++g) {
    if (!hot[g]) continue;
    if (options.use_shared_tiles) {
      tile_addr[g] = kb.var_u32(
          kb.imad(tid, kb.imm_u32(phys.groups[g].stride), kb.param_u32(g)));
    } else {
      tile_addr[g] = kb.var_u32(kb.param_u32(g));
    }
  }
  Val my_smem = kb.iadd(smem, kb.shl(tid, 4));
  Val n_tiles = kb.param_u32(ngroups + 1);

  // one pairwise interaction given the source's hot fields
  auto interaction = [&](Val sx, Val sy, Val sz, Val sm) {
    // naive code recomputes the softening term every iteration; the ICM
    // pass (options.icm) hoists it, reproducing the paper's manual fix
    Val eps = kb.imm_f32(options.softening);
    Val eps2 = kb.fmul(eps, eps);
    Val dx = kb.fsub(sx, px);
    Val dy = kb.fsub(sy, py);
    Val dz = kb.fsub(sz, pz);
    Val r2 = kb.ffma(dz, dz, eps2);
    r2 = kb.ffma(dy, dy, r2);
    r2 = kb.ffma(dx, dx, r2);
    Val inv = kb.frsqrt(r2);
    Val inv2 = kb.fmul(inv, inv);
    Val inv3m = kb.fmul(kb.fmul(inv2, inv), sm);
    kb.ffma_into(ax, dx, inv3m);
    kb.ffma_into(ay, dy, inv3m);
    kb.ffma_into(az, dz, inv3m);
  };

  if (options.use_shared_tiles) {
    // ---- B: tile staging loop -----------------------------------------------
    kb.region(Region::kBlockFetch);
    kb.for_dynamic(n_tiles, [&](Val) {
      const HotFields src =
          load_hot_fields(kb, phys, tile_addr, options.use_texture_fetches);
      kb.st_shared(my_smem, src.px, 0);
      kb.st_shared(my_smem, src.py, 4);
      kb.st_shared(my_smem, src.pz, 8);
      kb.st_shared(my_smem, src.mass, 12);
      kb.bar();

      // ---- P: the innermost loop over the staged tile ----------------------
      kb.region(Region::kInner);
      kb.for_counted(k_tile, [&](Val j) {
        Val saddr = kb.imad(j, kb.imm_u32(16), smem);
        Val sp = kb.ld_shared_vec(saddr, MemWidth::kW128, vgpu::VType::kF32);
        interaction(kb.comp(sp, 0), kb.comp(sp, 1), kb.comp(sp, 2),
                    kb.comp(sp, 3));
      });
      kb.region(Region::kBlockFetch);
      kb.bar();
      for (std::uint32_t g = 0; g < ngroups; ++g) {
        if (!hot[g]) continue;
        kb.assign(tile_addr[g],
                  kb.iadd_imm(tile_addr[g], k_tile * phys.groups[g].stride));
      }
    });
  } else {
    // ---- no tiling: every interaction reads global memory (ablation) -------
    kb.region(Region::kInner);
    Val n_total = kb.imul(n_tiles, kb.ntid());
    kb.for_dynamic(n_total, [&](Val) {
      const HotFields src =
          load_hot_fields(kb, phys, tile_addr, options.use_texture_fetches);
      interaction(src.px, src.py, src.pz, src.mass);
      for (std::uint32_t g = 0; g < ngroups; ++g) {
        if (!hot[g]) continue;
        kb.assign(tile_addr[g],
                  kb.iadd_imm(tile_addr[g], phys.groups[g].stride));
      }
    });
  }

  // ---- epilogue: coalesced SoA acceleration stores ---------------------------
  // The thread id and tile count are rematerialized here (special registers
  // and parameters are free to re-read) so they occupy no register across
  // the loops - the standard nvcc rematerialization.
  kb.region(Region::kOther);
  Val out = kb.param_u32(ngroups);
  Val i2 = kb.iadd(kb.imul(kb.ctaid(), kb.ntid()), kb.tid());
  Val npad = kb.imul(kb.param_u32(ngroups + 1), kb.ntid());
  Val out_x = kb.imad(i2, kb.imm_u32(4), out);
  kb.st_global(out_x, ax, 0);
  Val out_y = kb.imad(kb.iadd(npad, i2), kb.imm_u32(4), out);
  kb.st_global(out_y, ay, 0);
  Val out_z = kb.imad(kb.iadd(kb.iadd(npad, npad), i2), kb.imm_u32(4), out);
  kb.st_global(out_z, az, 0);

  Program prog = std::move(kb).finish();
  vgpu::verify(prog);

  // locate the counted inner loop (trip == K); the outer dynamic loop has
  // trip 0. The untiled ablation kernel has no counted loop - its single
  // dynamic loop cannot be unrolled, and ICM applies to it directly.
  std::size_t inner = prog.loops.size();
  for (std::size_t l = 0; l < prog.loops.size(); ++l) {
    if (prog.loops[l].trip_count == k_tile) inner = l;
  }
  if (options.use_shared_tiles) {
    VGPU_EXPECTS_MSG(inner < prog.loops.size(), "inner loop not found");
    if (options.icm) {
      unroll::hoist_invariants(prog, inner);
    }
    if (options.unroll > 1) {
      unroll::unroll_loop(prog, inner, options.unroll);
    }
  } else {
    VGPU_EXPECTS_MSG(options.unroll == 1,
                     "the untiled kernel's dynamic loop cannot be unrolled");
    if (options.icm) {
      unroll::hoist_all_invariants(prog);
    }
  }
  vgpu::run_standard_pipeline(prog);
  const vgpu::RegAllocResult alloc =
      vgpu::allocate_registers(prog, options.max_regs);

  BuiltKernel built;
  built.phys = std::move(phys);
  built.options = options;
  built.regs_per_thread = alloc.num_phys_regs;
  built.static_sbp = unroll::static_counts(prog, options.unroll);
  built.prog = std::move(prog);
  return built;
}

}  // namespace gravit
