// simulation.hpp - the top-level Gravit-style simulation loop.
//
// Bundles a particle set, the Eq. 1 force model, an integrator and a force
// backend (serial CPU direct sum, CPU Barnes-Hut, or the simulated-GPU
// far-field kernel) behind one step() API - the piece of Gravit the paper's
// kernel plugs into.
#pragma once

#include <memory>
#include <optional>

#include "gravit/forces_cpu.hpp"
#include "gravit/gpu_runner.hpp"
#include "gravit/observer.hpp"
#include "gravit/particle.hpp"

namespace gravit {

enum class ForceBackend : std::uint8_t {
  kCpuDirect,     ///< serial O(n^2) - the paper's CPU baseline
  kCpuBarnesHut,  ///< O(n log n) octree
  kGpuDirect,     ///< the paper's O(n^2) kernel on the simulated device
};

[[nodiscard]] const char* to_string(ForceBackend b);

enum class Integrator : std::uint8_t { kEuler, kLeapfrog };

struct SimulationOptions {
  ForceBackend backend = ForceBackend::kGpuDirect;
  Integrator integrator = Integrator::kLeapfrog;
  float dt = 0.01f;
  float theta = 0.5f;  ///< Barnes-Hut opening angle
  ForceModel forces;   ///< softening, NN term, external field
  FarfieldGpuOptions gpu;  ///< kernel variant for the GPU backend
  StepObserver observer;   ///< per-step telemetry hook (may be empty)
};

class Simulation {
 public:
  Simulation(ParticleSet initial, SimulationOptions options);

  /// Advance one step of options().dt.
  void step();
  /// Advance `count` steps.
  void run(std::uint32_t count);

  [[nodiscard]] const ParticleSet& particles() const { return set_; }
  [[nodiscard]] ParticleSet& particles() { return set_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::uint64_t steps_taken() const { return steps_; }
  [[nodiscard]] const SimulationOptions& options() const { return options_; }

  /// Far-field accelerations of the current state via the active backend.
  [[nodiscard]] std::vector<Vec3> far_field() const;

 private:
  [[nodiscard]] std::vector<Vec3> accel(const ParticleSet& set) const;

  ParticleSet set_;
  SimulationOptions options_;
  std::unique_ptr<FarfieldGpu> gpu_;  ///< built once, reused across steps
  double time_ = 0.0;
  std::uint64_t steps_ = 0;
  /// Device cycles of the most recent GPU force launch (0 for CPU backends
  /// and functional-only runs); forwarded to StepStats::gpu_cycles.
  mutable std::uint64_t last_force_cycles_ = 0;
};

}  // namespace gravit
