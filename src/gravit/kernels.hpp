// kernels.hpp - the far-field force kernel generator.
//
// Builds the paper's Sec. IV kernel for any memory layout and optimization
// level. The kernel has exactly the paper's three-part structure:
//
//   S  per-thread setup: global thread id, own position, zeroed
//      accumulators (executed once per thread);
//   B  tile fetch: each thread of the block stages one particle's hot
//      fields (position + mass) from global memory - through the layout
//      under test - into a shared-memory float4 tile, then synchronizes
//      (executed n/K times);
//   P  the innermost loop over the K staged particles: ~20 instructions of
//      fsub/ffma/rsqrt per interaction (executed n times per thread).
//
// Optimization levels compose:
//   * layout::SchemeKind - how the B-phase global reads are laid out
//     (Sec. II: AoS / SoA / AoaS / SoAoaS);
//   * unroll - inner-loop unroll factor, applied with the real unrolling
//     pass + optimizer (Sec. IV-A);
//   * icm - invariant code motion of the softening term out of the inner
//     loop, the paper's manual register-pressure optimization.
//
// Kernel parameters: [group bases..., accel_out, n_tiles]. The particle
// count must be padded to a tile multiple (zero-mass padding exerts no
// force), which removes all control-flow guards: accelerations are written
// as three coalesced arrays ax[0..npad), ay, az at accel_out.
#pragma once

#include <cstdint>

#include "gravit/forces_cpu.hpp"
#include "layout/plan.hpp"
#include "unroll/model.hpp"
#include "vgpu/ir.hpp"

namespace gravit {

struct KernelOptions {
  layout::SchemeKind scheme = layout::SchemeKind::kSoAoaS;
  std::uint32_t block = 128;  ///< threads per block = tile size K
  std::uint32_t unroll = 1;   ///< inner-loop unroll factor (divides block)
  bool icm = false;           ///< hoist the softening term out of the loop
  /// Stage tiles through shared memory (the paper's B phase). false =
  /// every interaction reads its source particle straight from global
  /// memory - the ablation showing why tiling confines the layout effect
  /// to a few percent of the application (bench/ablation_tiling).
  bool use_shared_tiles = true;
  /// Fetch particle data through the texture cache instead of plain global
  /// loads (the GPU Gems n-body trick; the paper names the texture cache as
  /// one of the device's only caches). Exercised by bench/ablation_texture.
  bool use_texture_fetches = false;
  /// Cap the per-thread register count like nvcc's -maxrregcount (0 = no
  /// cap); excess values spill to local memory. Exercised by
  /// bench/ablation_maxrregcount: capping the rolled kernel to 16 registers
  /// buys the 67% occupancy with spill traffic instead of unrolling.
  std::uint32_t max_regs = 0;
  float softening = kDefaultSoftening;
};

struct BuiltKernel {
  vgpu::Program prog;
  layout::PhysicalLayout phys;
  KernelOptions options;
  std::uint32_t regs_per_thread = 0;
  unroll::SbpCounts static_sbp;  ///< Eq. 3 decomposition (per-iteration P)

  [[nodiscard]] std::uint32_t num_groups() const {
    return static_cast<std::uint32_t>(phys.groups.size());
  }
  /// params: group bases + accel_out + n_tiles
  [[nodiscard]] std::uint32_t num_params() const { return num_groups() + 2; }

  /// The kernel's output layout: three coalesced float arrays ax[0..n_pad),
  /// ay, az at accel_out. This defines the Fig. 12 protocol's d2h payload -
  /// allocation, download and modeled copy time all derive from it (no
  /// hard-coded bytes-per-particle in benches).
  static constexpr std::uint32_t kOutputFloatsPerElement = 3;
  [[nodiscard]] std::uint64_t output_bytes(std::uint64_t n_pad) const {
    return n_pad * sizeof(float) * kOutputFloatsPerElement;
  }
};

/// Build, optimize, unroll and register-allocate the far-field kernel.
[[nodiscard]] BuiltKernel make_farfield_kernel(const KernelOptions& options);

/// A human-readable label ("SoAoaS+unroll128+icm") for benches and logs.
[[nodiscard]] std::string kernel_label(const KernelOptions& options);

}  // namespace gravit
