#include "gravit/spawn.hpp"

#include <cmath>
#include <numbers>
#include <random>

namespace gravit {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

Vec3 random_unit_vector(std::mt19937& rng) {
  std::uniform_real_distribution<float> u01(0.0f, 1.0f);
  const float z = 2.0f * u01(rng) - 1.0f;
  const float phi = 2.0f * kPi * u01(rng);
  const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

}  // namespace

ParticleSet spawn_uniform_cube(std::size_t n, float half, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> coord(-half, half);
  std::uniform_real_distribution<float> vel(-0.05f, 0.05f);
  ParticleSet set;
  const float m = 1.0f / static_cast<float>(n);
  for (std::size_t k = 0; k < n; ++k) {
    set.push_back(Vec3{coord(rng), coord(rng), coord(rng)},
                  Vec3{vel(rng), vel(rng), vel(rng)}, m);
  }
  return set;
}

ParticleSet spawn_plummer(std::size_t n, float a, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> u01(1e-6f, 1.0f);
  ParticleSet set;
  const float m = 1.0f / static_cast<float>(n);
  for (std::size_t k = 0; k < n; ++k) {
    // radius from the inverse cumulative mass profile
    const float x = u01(rng);
    const float r = a / std::sqrt(std::pow(x, -2.0f / 3.0f) - 1.0f);
    const Vec3 pos = random_unit_vector(rng) * r;
    // velocity: sample from the isotropic distribution via the standard
    // von Neumann rejection (Aarseth, Henon & Wielen 1974)
    float q = 0.0f;
    std::uniform_real_distribution<float> uq(0.0f, 1.0f);
    std::uniform_real_distribution<float> ug(0.0f, 0.1f);
    for (int tries = 0; tries < 1000; ++tries) {
      const float qq = uq(rng);
      const float g = qq * qq * std::pow(1.0f - qq * qq, 3.5f);
      if (ug(rng) < g) {
        q = qq;
        break;
      }
    }
    const float vesc = std::sqrt(2.0f) * std::pow(1.0f + r * r / (a * a), -0.25f) /
                       std::sqrt(a);
    const Vec3 vel = random_unit_vector(rng) * (q * vesc);
    set.push_back(pos, vel, m);
  }
  return set;
}

ParticleSet spawn_disk(std::size_t n, float radius, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> u01(0.05f, 1.0f);
  std::uniform_real_distribution<float> angle(0.0f, 2.0f * kPi);
  std::uniform_real_distribution<float> thick(-0.02f, 0.02f);
  ParticleSet set;
  const float m = 1.0f / static_cast<float>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const float r = radius * std::sqrt(u01(rng));
    const float phi = angle(rng);
    const Vec3 pos{r * std::cos(phi), r * std::sin(phi), thick(rng)};
    // roughly Keplerian circular velocity around the enclosed mass (~ r^2
    // for a uniform disk)
    const float frac = (r / radius) * (r / radius);
    const float v = std::sqrt(std::max(1e-4f, frac) / std::max(r, 0.05f));
    const Vec3 vel{-v * std::sin(phi), v * std::cos(phi), 0.0f};
    set.push_back(pos, vel, m);
  }
  return set;
}

ParticleSet spawn_cluster_pair(std::size_t n_per_cluster, float separation,
                               float impact_parameter, float approach_speed,
                               std::uint32_t seed) {
  ParticleSet a = spawn_plummer(n_per_cluster, 0.5f, seed);
  ParticleSet b = spawn_plummer(n_per_cluster, 0.5f, seed + 17);
  ParticleSet out;
  const float hs = separation / 2.0f;
  const float hb = impact_parameter / 2.0f;
  for (std::size_t k = 0; k < a.size(); ++k) {
    out.push_back(a.pos()[k] + Vec3{-hs, -hb, 0.0f},
                  a.vel()[k] + Vec3{approach_speed, 0.0f, 0.0f},
                  a.mass()[k] * 0.5f);
  }
  for (std::size_t k = 0; k < b.size(); ++k) {
    out.push_back(b.pos()[k] + Vec3{hs, hb, 0.0f},
                  b.vel()[k] + Vec3{-approach_speed, 0.0f, 0.0f},
                  b.mass()[k] * 0.5f);
  }
  return out;
}

}  // namespace gravit
