#include "gravit/integrator.hpp"

#include "vgpu/check.hpp"

namespace gravit {

void step_euler(ParticleSet& set, const AccelFn& accel, float dt) {
  const std::vector<Vec3> a = accel(set);
  VGPU_EXPECTS(a.size() == set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    set.vel()[i] += a[i] * dt;
    set.pos()[i] += set.vel()[i] * dt;
  }
}

std::vector<Vec3> step_leapfrog(ParticleSet& set, const AccelFn& accel, float dt,
                                const std::vector<Vec3>* accel_now) {
  std::vector<Vec3> a0;
  if (accel_now != nullptr) {
    VGPU_EXPECTS(accel_now->size() == set.size());
    a0 = *accel_now;
  } else {
    a0 = accel(set);
  }
  const float half = 0.5f * dt;
  for (std::size_t i = 0; i < set.size(); ++i) {
    set.vel()[i] += a0[i] * half;          // half kick
    set.pos()[i] += set.vel()[i] * dt;     // drift
  }
  std::vector<Vec3> a1 = accel(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    set.vel()[i] += a1[i] * half;          // half kick
  }
  return a1;
}

}  // namespace gravit
