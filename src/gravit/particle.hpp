// particle.hpp - particle storage and basic vector math.
//
// The host keeps particles in structure-of-vectors form (convenient for the
// CPU reference paths); flatten()/unflatten() convert to the field-major
// AoS float stream that layout::pack marshals into any of the paper's four
// device layouts.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "layout/record.hpp"
#include "vgpu/check.hpp"

namespace gravit {

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  friend Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend Vec3 operator*(Vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }
  friend Vec3 operator*(float s, Vec3 a) { return a * s; }
  Vec3& operator+=(Vec3 o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(Vec3 o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  [[nodiscard]] float norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] float norm() const { return std::sqrt(norm2()); }
  friend float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
  friend Vec3 cross(Vec3 a, Vec3 b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
  }
};

/// A system of particles. Invariant: pos, vel and mass have equal size.
class ParticleSet {
 public:
  ParticleSet() = default;
  explicit ParticleSet(std::size_t n) : pos_(n), vel_(n), mass_(n, 1.0f) {}

  [[nodiscard]] std::size_t size() const { return pos_.size(); }
  [[nodiscard]] bool empty() const { return pos_.empty(); }

  [[nodiscard]] std::span<Vec3> pos() { return pos_; }
  [[nodiscard]] std::span<const Vec3> pos() const { return pos_; }
  [[nodiscard]] std::span<Vec3> vel() { return vel_; }
  [[nodiscard]] std::span<const Vec3> vel() const { return vel_; }
  [[nodiscard]] std::span<float> mass() { return mass_; }
  [[nodiscard]] std::span<const float> mass() const { return mass_; }

  void push_back(Vec3 p, Vec3 v, float m) {
    pos_.push_back(p);
    vel_.push_back(v);
    mass_.push_back(m);
  }

  /// Append `count` zero-mass placeholder particles (device-tile padding;
  /// massless particles exert no force and their own motion is ignored).
  void pad_to(std::size_t count) {
    VGPU_EXPECTS(count >= size());
    pos_.resize(count);
    vel_.resize(count);
    mass_.resize(count, 0.0f);
  }

  /// Field-major AoS stream in the order of layout::gravit_record():
  /// px,py,pz,vx,vy,vz,mass per element.
  [[nodiscard]] std::vector<float> flatten() const;
  static ParticleSet unflatten(std::span<const float> data);

 private:
  std::vector<Vec3> pos_;
  std::vector<Vec3> vel_;
  std::vector<float> mass_;
};

}  // namespace gravit
