#include "gravit/gpu_runner.hpp"

#include <algorithm>
#include <bit>

#include "layout/transform.hpp"
#include "vgpu/check.hpp"
#include "vgpu/occupancy.hpp"
#include "vgpu/sampling.hpp"

namespace gravit {

using vgpu::Buffer;
using vgpu::Device;
using vgpu::LaunchConfig;
using vgpu::TimingOptions;

FarfieldGpu::FarfieldGpu(FarfieldGpuOptions options)
    : options_(std::move(options)), kernel_(make_farfield_kernel(options_.kernel)) {}

FarfieldGpu::Uploaded FarfieldGpu::upload(const ParticleSet& set,
                                          Device& dev) const {
  VGPU_EXPECTS_MSG(!set.empty(), "empty particle set");
  const std::uint32_t k_tile = options_.kernel.block;
  ParticleSet padded = set;  // zero-mass padding to a tile multiple
  const std::uint32_t n_pad = static_cast<std::uint32_t>(
      (set.size() + k_tile - 1) / k_tile * k_tile);
  padded.pad_to(n_pad);

  const std::vector<float> flat = padded.flatten();
  const std::vector<std::byte> image = layout::pack(kernel_.phys, flat, n_pad);

  Uploaded up;
  up.n_pad = n_pad;
  up.n_tiles = n_pad / k_tile;
  up.image = dev.malloc(image.size());
  dev.memcpy_h2d(up.image, image);
  up.accel_out = dev.malloc(static_cast<std::size_t>(n_pad) * 12);

  for (const std::uint64_t base : kernel_.phys.group_bases(n_pad)) {
    up.params.push_back(up.image.addr + static_cast<std::uint32_t>(base));
  }
  up.params.push_back(up.accel_out.addr);
  up.params.push_back(up.n_tiles);
  return up;
}

namespace {

std::vector<Vec3> download_accel(Device& dev, const Buffer& out,
                                 std::uint32_t n_pad, std::size_t n) {
  std::vector<float> raw(static_cast<std::size_t>(n_pad) * 3);
  dev.download<float>(raw, out);
  std::vector<Vec3> accel(n);
  for (std::size_t k = 0; k < n; ++k) {
    accel[k] = Vec3{raw[k], raw[n_pad + k], raw[2ull * n_pad + k]};
  }
  return accel;
}

}  // namespace

FarfieldGpuResult FarfieldGpu::run_functional(const ParticleSet& set) {
  Device dev(vgpu::g80_spec(), options_.device_memory);
  const Uploaded up = upload(set, dev);
  FarfieldGpuResult res;
  res.regs_per_thread = kernel_.regs_per_thread;
  res.stats = dev.launch_functional(kernel_.prog, LaunchConfig{up.n_tiles, options_.kernel.block},
                                    up.params, options_.driver);
  res.accel = download_accel(dev, up.accel_out, up.n_pad, set.size());
  return res;
}

FarfieldGpuResult FarfieldGpu::run_timed(const ParticleSet& set) {
  Device dev(vgpu::g80_spec(), options_.device_memory);
  dev.reset_timeline();
  const Uploaded up = upload(set, dev);

  const LaunchConfig cfg{up.n_tiles, options_.kernel.block};
  const vgpu::OccupancyResult occ = vgpu::compute_occupancy(
      dev.spec(), cfg.block_threads, kernel_.prog.num_phys_regs,
      kernel_.prog.shared_bytes);
  const std::uint32_t wave = vgpu::wave_blocks(dev.spec(), occ, options_.sim_sms);

  TimingOptions topt;
  topt.driver = options_.driver;
  topt.threads = options_.sim_threads;
  topt.sim_sms = options_.sim_sms;
  if (options_.max_waves > 0) {
    topt.max_blocks = std::min(cfg.grid_blocks, options_.max_waves * wave);
  }

  FarfieldGpuResult res;
  res.regs_per_thread = kernel_.regs_per_thread;

  const bool sample = options_.sample_tiles > 0 && up.n_tiles > options_.sample_tiles;
  if (!sample) {
    res.stats = dev.launch_timed(kernel_.prog, cfg, up.params, topt);
    res.cycles = static_cast<double>(res.stats.cycles) * res.stats.extrapolation_factor;
    res.sampled = res.stats.blocks_simulated != res.stats.blocks_total;
    res.accel = download_accel(dev, up.accel_out, up.n_pad, set.size());
  } else {
    // tile sampling: run t/2 and t tiles, extrapolate affinely; both runs
    // happen outside the host timeline, which is charged the estimate.
    const std::uint32_t t2 = options_.sample_tiles;
    const std::uint32_t t1 = std::max(1u, t2 / 2);
    std::vector<std::uint32_t> params = up.params;
    params.back() = t1;
    const vgpu::LaunchStats s1 =
        vgpu::run_timed(kernel_.prog, dev.spec(), dev.gmem(), cfg, params, topt);
    params.back() = t2;
    const vgpu::LaunchStats s2 =
        vgpu::run_timed(kernel_.prog, dev.spec(), dev.gmem(), cfg, params, topt);
    const double per_block_cycles = vgpu::extrapolate_affine(
        static_cast<double>(t1), static_cast<double>(s1.cycles),
        static_cast<double>(t2), static_cast<double>(s2.cycles),
        static_cast<double>(up.n_tiles));
    res.cycles = per_block_cycles * s2.extrapolation_factor;
    res.stats = s2;
    res.sampled = true;
    res.sample_t1 = t1;
    res.sample_c1 = static_cast<double>(s1.cycles);
    res.sample_t2 = t2;
    res.sample_c2 = static_cast<double>(s2.cycles);
  }
  // results copy-back (the paper's window includes it); under sampling the
  // values are partial, so copy into a scratch buffer for timing only.
  std::vector<float> scratch(static_cast<std::size_t>(up.n_pad) * 3);
  if (sample) {
    dev.download<float>(scratch, up.accel_out);
  }
  res.kernel_ms = dev.spec().cycles_to_ms(res.cycles);
  if (sample) {
    res.end_to_end_ms = dev.timeline_ms() + res.kernel_ms +
                        dev.spec().launch_overhead_us / 1000.0;
  } else {
    res.end_to_end_ms = dev.timeline_ms();
  }
  res.occupancy = res.stats.occupancy;
  return res;
}

}  // namespace gravit
