#include "gravit/gpu_runner.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "layout/transform.hpp"
#include "vgpu/check.hpp"
#include "vgpu/occupancy.hpp"
#include "vgpu/sampling.hpp"

namespace gravit {

using vgpu::Buffer;
using vgpu::Device;
using vgpu::LaunchConfig;
using vgpu::TimingOptions;

FarfieldGpu::FarfieldGpu(FarfieldGpuOptions options)
    : options_(std::move(options)), kernel_(make_farfield_kernel(options_.kernel)) {}

FarfieldGpu::Uploaded FarfieldGpu::upload(const ParticleSet& set,
                                          Device& dev) const {
  VGPU_EXPECTS_MSG(!set.empty(), "empty particle set");
  const std::uint32_t k_tile = options_.kernel.block;
  ParticleSet padded = set;  // zero-mass padding to a tile multiple
  const std::uint32_t n_pad = static_cast<std::uint32_t>(
      (set.size() + k_tile - 1) / k_tile * k_tile);
  padded.pad_to(n_pad);

  const std::vector<float> flat = padded.flatten();
  const std::vector<std::byte> image = layout::pack(kernel_.phys, flat, n_pad);

  Uploaded up;
  up.n_pad = n_pad;
  up.n_tiles = n_pad / k_tile;
  up.image = dev.malloc(image.size());
  dev.memcpy_h2d(up.image, image);
  up.accel_out =
      dev.malloc(static_cast<std::size_t>(kernel_.output_bytes(n_pad)));

  for (const std::uint64_t base : kernel_.phys.group_bases(n_pad)) {
    up.params.push_back(up.image.addr + static_cast<std::uint32_t>(base));
  }
  up.params.push_back(up.accel_out.addr);
  up.params.push_back(up.n_tiles);
  return up;
}

namespace {

std::vector<Vec3> download_accel(Device& dev, const Buffer& out,
                                 std::uint32_t n_pad, std::size_t n) {
  std::vector<float> raw(static_cast<std::size_t>(n_pad) *
                         BuiltKernel::kOutputFloatsPerElement);
  dev.download<float>(raw, out);
  std::vector<Vec3> accel(n);
  for (std::size_t k = 0; k < n; ++k) {
    accel[k] = Vec3{raw[k], raw[n_pad + k], raw[2ull * n_pad + k]};
  }
  return accel;
}

}  // namespace

FarfieldGpuResult FarfieldGpu::run_functional(const ParticleSet& set) {
  Device dev(vgpu::g80_spec(), options_.device_memory);
  const Uploaded up = upload(set, dev);
  FarfieldGpuResult res;
  res.regs_per_thread = kernel_.regs_per_thread;
  res.stats = dev.launch_functional(kernel_.prog, LaunchConfig{up.n_tiles, options_.kernel.block},
                                    up.params, options_.driver);
  res.accel = download_accel(dev, up.accel_out, up.n_pad, set.size());
  return res;
}

FarfieldGpuResult FarfieldGpu::run_timed(const ParticleSet& set) {
  Device dev(vgpu::g80_spec(), options_.device_memory);
  dev.reset_timeline();
  const Uploaded up = upload(set, dev);

  const LaunchConfig cfg{up.n_tiles, options_.kernel.block};
  const vgpu::OccupancyResult occ = vgpu::compute_occupancy(
      dev.spec(), cfg.block_threads, kernel_.prog.num_phys_regs,
      kernel_.prog.shared_bytes);
  const std::uint32_t wave = vgpu::wave_blocks(dev.spec(), occ, options_.sim_sms);

  TimingOptions topt;
  topt.driver = options_.driver;
  topt.threads = options_.sim_threads;
  topt.sim_sms = options_.sim_sms;
  if (options_.max_waves > 0) {
    topt.max_blocks = std::min(cfg.grid_blocks, options_.max_waves * wave);
  }

  FarfieldGpuResult res;
  res.regs_per_thread = kernel_.regs_per_thread;

  const bool sample = options_.sample_tiles > 0 && up.n_tiles > options_.sample_tiles;
  if (!sample) {
    res.stats = dev.launch_timed(kernel_.prog, cfg, up.params, topt);
    res.cycles = static_cast<double>(res.stats.cycles) * res.stats.extrapolation_factor;
    res.sampled = res.stats.blocks_simulated != res.stats.blocks_total;
    res.accel = download_accel(dev, up.accel_out, up.n_pad, set.size());
  } else {
    // tile sampling: run t/2 and t tiles, extrapolate affinely; both runs
    // happen outside the host timeline, which is charged the estimate.
    const std::uint32_t t2 = options_.sample_tiles;
    const std::uint32_t t1 = std::max(1u, t2 / 2);
    std::vector<std::uint32_t> params = up.params;
    params.back() = t1;
    const vgpu::LaunchStats s1 =
        vgpu::run_timed(kernel_.prog, dev.spec(), dev.gmem(), cfg, params, topt);
    params.back() = t2;
    const vgpu::LaunchStats s2 =
        vgpu::run_timed(kernel_.prog, dev.spec(), dev.gmem(), cfg, params, topt);
    const double per_block_cycles = vgpu::extrapolate_affine(
        static_cast<double>(t1), static_cast<double>(s1.cycles),
        static_cast<double>(t2), static_cast<double>(s2.cycles),
        static_cast<double>(up.n_tiles));
    res.cycles = per_block_cycles * s2.extrapolation_factor;
    res.stats = s2;
    res.sampled = true;
    res.sample_t1 = t1;
    res.sample_c1 = static_cast<double>(s1.cycles);
    res.sample_t2 = t2;
    res.sample_c2 = static_cast<double>(s2.cycles);
  }
  // results copy-back (the paper's window includes it); under sampling the
  // values are partial, so copy into a scratch buffer for timing only.
  std::vector<float> scratch(static_cast<std::size_t>(up.n_pad) *
                             BuiltKernel::kOutputFloatsPerElement);
  if (sample) {
    dev.download<float>(scratch, up.accel_out);
  }
  res.kernel_ms = dev.spec().cycles_to_ms(res.cycles);
  if (sample) {
    res.end_to_end_ms = dev.timeline_ms() + res.kernel_ms +
                        dev.spec().launch_overhead_us / 1000.0;
  } else {
    res.end_to_end_ms = dev.timeline_ms();
  }
  res.occupancy = res.stats.occupancy;
  return res;
}

PipelineResult FarfieldGpu::run_timed_steps(const ParticleSet& set,
                                            std::uint32_t steps, bool overlap,
                                            std::uint32_t h2d_chunks) {
  VGPU_EXPECTS_MSG(steps > 0, "run_timed_steps needs at least one step");
  VGPU_EXPECTS_MSG(h2d_chunks > 0, "h2d_chunks must be at least 1");
  Device dev(vgpu::g80_spec(), options_.device_memory);
  dev.reset_timeline();

  // Pack the padded input image once on the host. The protocol models a
  // host that produces fresh inputs every step (Gravit re-uploads particle
  // state each frame), so each step re-transfers the full image.
  const std::uint32_t k_tile = options_.kernel.block;
  const std::uint32_t n_pad = static_cast<std::uint32_t>(
      (set.size() + k_tile - 1) / k_tile * k_tile);
  ParticleSet padded = set;
  padded.pad_to(n_pad);
  const std::vector<float> flat = padded.flatten();
  const std::vector<std::byte> image = layout::pack(kernel_.phys, flat, n_pad);
  const std::uint32_t n_tiles = n_pad / k_tile;
  const std::size_t out_bytes =
      static_cast<std::size_t>(kernel_.output_bytes(n_pad));
  VGPU_EXPECTS_MSG(h2d_chunks <= image.size(),
                   "more h2d chunks than image bytes");

  // Double-buffered device state: step i uses buffer pair i % 2, so the
  // upload of step i+1's image can proceed while step i's kernel reads the
  // other image (overlap mode; serial mode only touches pair 0).
  const std::uint32_t pairs = overlap ? 2 : 1;
  Buffer img[2], acc[2];
  std::vector<std::uint32_t> params[2];
  for (std::uint32_t b = 0; b < pairs; ++b) {
    img[b] = dev.malloc(image.size());
    acc[b] = dev.malloc(out_bytes);
    for (const std::uint64_t base : kernel_.phys.group_bases(n_pad)) {
      params[b].push_back(img[b].addr + static_cast<std::uint32_t>(base));
    }
    params[b].push_back(acc[b].addr);
    params[b].push_back(n_tiles);
  }
  const LaunchConfig cfg{n_tiles, options_.kernel.block};

  TimingOptions topt;
  topt.driver = options_.driver;
  topt.threads = options_.sim_threads;
  topt.sim_sms = options_.sim_sms;
  if (options_.max_waves > 0) {
    const vgpu::OccupancyResult occ = vgpu::compute_occupancy(
        dev.spec(), cfg.block_threads, kernel_.prog.num_phys_regs,
        kernel_.prog.shared_bytes);
    const std::uint32_t wave =
        vgpu::wave_blocks(dev.spec(), occ, options_.sim_sms);
    topt.max_blocks = std::min(cfg.grid_blocks, options_.max_waves * wave);
  }

  PipelineResult res;
  res.kernel_ms = 0.0;  // filled from the first step's stats below
  std::vector<std::byte> sink[2];
  for (std::uint32_t b = 0; b < pairs; ++b) sink[b].resize(out_bytes);

  // Upload chunking: h2d_chunks sub-Buffer views of the image (transfer
  // staging granularity; each chunk pays the PCIe latency, which is what
  // the chunked column in bench/fig12 quantifies).
  const auto chunk_of = [&](std::uint32_t c) {
    const std::size_t lo = image.size() * c / h2d_chunks;
    const std::size_t hi = image.size() * (c + 1) / h2d_chunks;
    return std::pair<std::size_t, std::size_t>{lo, hi - lo};
  };

  const auto note_cycles = [&](const vgpu::LaunchStats& stats,
                               std::uint32_t step) {
    const std::uint64_t cycles = stats.cycles;
    if (step == 0) {
      res.kernel_cycles = cycles;
      res.kernel_ms = dev.spec().cycles_to_ms(static_cast<double>(cycles) *
                                              stats.extrapolation_factor);
    } else {
      VGPU_EXPECTS_MSG(cycles == res.kernel_cycles,
                       "kernel cycles drifted across steps");
    }
  };

  if (!overlap) {
    res.h2d_ms = dev.copy_ms(image.size());
    for (std::uint32_t i = 0; i < steps; ++i) {
      dev.memcpy_h2d(img[0], image);
      note_cycles(dev.launch_timed(kernel_.prog, cfg, params[0], topt), i);
      dev.memcpy_d2h(sink[0], acc[0]);
    }
  } else {
    for (std::uint32_t c = 0; c < h2d_chunks; ++c) {
      res.h2d_ms += dev.copy_ms(chunk_of(c).second);
    }
    const vgpu::Stream up = dev.create_stream();
    const vgpu::Stream comp = dev.create_stream();
    const vgpu::Stream down = dev.create_stream();
    // Prefetching issue order: upload i+1 is enqueued before download i, so
    // the single DMA engine's FIFO never parks the next upload behind a
    // download that is itself waiting on the kernel (the software-pipelined
    // order every double-buffered uploader uses; see pipelined_step_ms).
    vgpu::Event uploaded[2], image_free[2], result_free[2];
    const auto enqueue_upload = [&](std::uint32_t i) {
      const std::uint32_t b = i % 2;
      // image[b] is free once kernel i-2 stopped reading it
      if (i >= 2) dev.wait_event(up, image_free[b]);
      for (std::uint32_t c = 0; c < h2d_chunks; ++c) {
        const auto [off, len] = chunk_of(c);
        dev.memcpy_h2d_async(
            up, Buffer{img[b].addr + static_cast<std::uint32_t>(off),
                       static_cast<std::uint32_t>(len)},
            std::span<const std::byte>(image).subspan(off, len));
      }
      uploaded[b] = dev.record_event(up);
    };
    enqueue_upload(0);
    for (std::uint32_t i = 0; i < steps; ++i) {
      const std::uint32_t b = i % 2;
      dev.wait_event(comp, uploaded[b]);
      // accel[b] is free once download i-2 drained it
      if (i >= 2) dev.wait_event(comp, result_free[b]);
      note_cycles(dev.launch_timed_async(comp, kernel_.prog, cfg, params[b],
                                         topt),
                  i);
      image_free[b] = dev.record_event(comp);
      if (i + 1 < steps) enqueue_upload(i + 1);
      dev.wait_event(down, image_free[b]);
      dev.memcpy_d2h_async(down, sink[b], acc[b]);
      result_free[b] = dev.record_event(down);
    }
    dev.sync();
    res.spans = dev.last_sync_spans();
  }
  res.d2h_ms = dev.copy_ms(out_bytes);
  res.total_ms = dev.timeline_ms();
  return res;
}

}  // namespace gravit
