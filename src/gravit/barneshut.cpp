#include "gravit/barneshut.hpp"

#include <algorithm>
#include <cmath>

#include "vgpu/check.hpp"

namespace gravit {

namespace {
constexpr int kMaxDepth = 48;
}

Octree::Octree(std::span<const Vec3> pos, std::span<const float> mass)
    : pos_(pos), mass_(mass) {
  VGPU_EXPECTS(pos.size() == mass.size());
  if (pos.empty()) return;

  // bounding cube
  Vec3 lo = pos[0];
  Vec3 hi = pos[0];
  for (const Vec3& p : pos) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  Node root;
  root.center = (lo + hi) * 0.5f;
  root.half = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z}) * 0.5f + 1e-6f;
  nodes_.reserve(pos.size() * 2);
  nodes_.push_back(root);

  for (std::uint32_t k = 0; k < pos.size(); ++k) {
    insert(0, k, 0);
  }
  std::sort(overflow_.begin(), overflow_.end());
  finalize(0);
}

std::size_t Octree::child_for(const Node& n, Vec3 p) const {
  std::size_t oct = 0;
  if (p.x >= n.center.x) oct |= 1;
  if (p.y >= n.center.y) oct |= 2;
  if (p.z >= n.center.z) oct |= 4;
  return oct;
}

std::size_t Octree::make_child(std::size_t node, std::size_t octant) {
  Node child;
  const Node& parent = nodes_[node];
  const float q = parent.half * 0.5f;
  child.half = q;
  child.center = parent.center;
  child.center.x += (octant & 1) ? q : -q;
  child.center.y += (octant & 2) ? q : -q;
  child.center.z += (octant & 4) ? q : -q;
  nodes_.push_back(child);
  const auto idx = static_cast<std::int32_t>(nodes_.size() - 1);
  nodes_[node].children[octant] = idx;
  return static_cast<std::size_t>(idx);
}

void Octree::insert(std::size_t node, std::uint32_t particle, int depth) {
  Node& n = nodes_[node];
  if (n.is_leaf) {
    if (n.particle < 0) {
      n.particle = static_cast<std::int32_t>(particle);
      return;
    }
    if (depth >= kMaxDepth) {
      // coincident particles: merge into this leaf's aggregate (finalize
      // sums masses over stored leaf particles; keep the first index and
      // fold the extra mass in during finalize via the overflow list).
      overflow_.push_back({node, particle});
      return;
    }
    // split: push the resident particle down
    const std::int32_t old = n.particle;
    n.particle = -1;
    n.is_leaf = false;
    const std::size_t oct_old = child_for(n, pos_[static_cast<std::size_t>(old)]);
    std::size_t child_old = make_child(node, oct_old);
    // note: make_child may reallocate nodes_; re-read references afterwards
    insert(child_old, static_cast<std::uint32_t>(old), depth + 1);
  }
  Node& n2 = nodes_[node];
  const std::size_t oct = child_for(n2, pos_[particle]);
  std::int32_t child = n2.children[oct];
  std::size_t child_idx;
  if (child < 0) {
    child_idx = make_child(node, oct);
  } else {
    child_idx = static_cast<std::size_t>(child);
  }
  insert(child_idx, particle, depth + 1);
}

void Octree::finalize(std::size_t node) {
  Node& n = nodes_[node];
  if (n.is_leaf) {
    if (n.particle >= 0) {
      n.mass = mass_[static_cast<std::size_t>(n.particle)];
      n.com = pos_[static_cast<std::size_t>(n.particle)] * n.mass;
    }
    // fold coincident particles parked on this leaf (rare; sorted lookup)
    auto it = std::lower_bound(
        overflow_.begin(), overflow_.end(),
        std::pair<std::size_t, std::uint32_t>{node, 0});
    for (; it != overflow_.end() && it->first == node; ++it) {
      const float m = mass_[it->second];
      n.mass += m;
      n.com += pos_[it->second] * m;
    }
  } else {
    for (const std::int32_t c : n.children) {
      if (c < 0) continue;
      finalize(static_cast<std::size_t>(c));
      n.mass += nodes_[static_cast<std::size_t>(c)].mass;
      n.com += nodes_[static_cast<std::size_t>(c)].com;
    }
  }
}

Vec3 Octree::accel_at(Vec3 p, float theta, float softening) const {
  Vec3 acc{};
  if (!nodes_.empty()) {
    accumulate(0, p, -1, theta, softening * softening, acc);
  }
  return acc;
}

std::vector<Vec3> Octree::accelerations(float theta, float softening) const {
  std::vector<Vec3> acc(pos_.size());
  const float eps2 = softening * softening;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    Vec3 a{};
    if (!nodes_.empty()) {
      accumulate(0, pos_[i], static_cast<std::int32_t>(i), theta, eps2, a);
    }
    acc[i] = a;
  }
  return acc;
}

void Octree::accumulate(std::size_t node, Vec3 p, std::int32_t skip, float theta,
                        float eps2, Vec3& acc) const {
  const Node& n = nodes_[node];
  if (n.mass <= 0.0f) return;
  const Vec3 com = n.com * (1.0f / n.mass);
  if (n.is_leaf) {
    if (n.particle == skip) return;
    const Vec3 d = com - p;
    const float r2 = d.norm2() + eps2;
    const float inv = 1.0f / std::sqrt(r2);
    acc += d * (n.mass * inv * inv * inv);
    return;
  }
  const Vec3 d = com - p;
  const float dist2 = d.norm2();
  const float size = 2.0f * n.half;
  if (size * size < theta * theta * dist2) {
    const float r2 = dist2 + eps2;
    const float inv = 1.0f / std::sqrt(r2);
    acc += d * (n.mass * inv * inv * inv);
    return;
  }
  for (const std::int32_t c : n.children) {
    if (c >= 0) accumulate(static_cast<std::size_t>(c), p, skip, theta, eps2, acc);
  }
}

std::size_t Octree::depth_of(std::size_t node) const {
  const Node& n = nodes_[node];
  if (n.is_leaf) return 1;
  std::size_t d = 0;
  for (const std::int32_t c : n.children) {
    if (c >= 0) d = std::max(d, depth_of(static_cast<std::size_t>(c)));
  }
  return d + 1;
}

std::size_t Octree::depth() const { return nodes_.empty() ? 0 : depth_of(0); }

}  // namespace gravit
