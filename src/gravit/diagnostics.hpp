// diagnostics.hpp - conservation diagnostics for simulation validation.
#pragma once

#include "gravit/forces_cpu.hpp"
#include "gravit/particle.hpp"

namespace gravit {

struct EnergyReport {
  double kinetic = 0.0;
  double potential = 0.0;
  [[nodiscard]] double total() const { return kinetic + potential; }
};

[[nodiscard]] double kinetic_energy(const ParticleSet& set);
[[nodiscard]] EnergyReport energy(const ParticleSet& set,
                                  float softening = kDefaultSoftening);
[[nodiscard]] Vec3 total_momentum(const ParticleSet& set);
[[nodiscard]] Vec3 total_angular_momentum(const ParticleSet& set);
[[nodiscard]] Vec3 center_of_mass(const ParticleSet& set);

}  // namespace gravit
