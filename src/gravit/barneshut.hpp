// barneshut.hpp - the Barnes-Hut O(n log n) tree code.
//
// The paper (Sec. I-C/I-D) describes Gravit's two far-field strategies: the
// Barnes-Hut octree, well suited to CPUs but too recursive for CUDA 1.x,
// and the direct O(n^2) sum it ports to the GPU instead. This is the
// octree: (1) build, (2) per-cell centre of mass and total mass,
// (3) per-particle traversal with the theta opening criterion - the
// three steps exactly as the paper lists them. It serves as the strong CPU
// baseline for the crossover study (bench/ext_barneshut_crossover).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gravit/particle.hpp"

namespace gravit {

class Octree {
 public:
  /// Builds the tree over the given particles (positions/masses are copied
  /// by reference into the tree's lifetime - keep the set alive).
  Octree(std::span<const Vec3> pos, std::span<const float> mass);

  /// Far-field acceleration on every particle using opening angle `theta`
  /// (0 = exact direct sum behaviour, larger = coarser and faster) and
  /// Plummer softening.
  [[nodiscard]] std::vector<Vec3> accelerations(float theta, float softening) const;

  /// Acceleration at an arbitrary point (no self-exclusion).
  [[nodiscard]] Vec3 accel_at(Vec3 p, float theta, float softening) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const;

 private:
  struct Node {
    Vec3 center{};       ///< geometric cell centre
    float half = 0.0f;   ///< half edge length
    Vec3 com{};          ///< centre of mass
    float mass = 0.0f;
    std::int32_t children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    std::int32_t particle = -1;  ///< leaf payload (particle index), -1 if none
    bool is_leaf = true;
  };

  void insert(std::size_t node, std::uint32_t particle, int depth);
  void finalize(std::size_t node);
  [[nodiscard]] std::size_t child_for(const Node& n, Vec3 p) const;
  std::size_t make_child(std::size_t node, std::size_t octant);
  void accumulate(std::size_t node, Vec3 p, std::int32_t skip, float theta,
                  float eps2, Vec3& acc) const;
  [[nodiscard]] std::size_t depth_of(std::size_t node) const;

  std::span<const Vec3> pos_;
  std::span<const float> mass_;
  std::vector<Node> nodes_;
  /// (leaf node, particle) pairs for particles that could not be separated
  /// at maximum depth (coincident positions); folded into leaf aggregates
  /// by finalize. Sorted by leaf before use.
  std::vector<std::pair<std::size_t, std::uint32_t>> overflow_;
};

}  // namespace gravit
