// observer.hpp - per-step observation hook shared by the host-driven
// (Simulation) and device-resident (GpuSimulation) loops. Consumers such
// as examples/gravit_cli use it to stream per-step telemetry (wall time,
// device cycles, energy drift) without the loops knowing about any sink.
#pragma once

#include <cstdint>
#include <functional>

namespace gravit {

class ParticleSet;

/// One completed step, as seen by a StepObserver. `particles` points at
/// the post-step host-side state when the loop keeps one (Simulation); it
/// is null for the device-resident loop, where a snapshot must be
/// downloaded explicitly. Expensive derived quantities (e.g. the O(n^2)
/// potential energy) are deliberately *not* precomputed here - observers
/// that want them compute them from `particles`, so loops without an
/// observer pay nothing.
struct StepStats {
  std::uint64_t step = 0;        ///< 1-based index of the completed step
  double sim_time = 0.0;         ///< simulated time after the step
  double wall_ms = 0.0;          ///< host wall-clock spent inside step()
  std::uint64_t gpu_cycles = 0;  ///< force-kernel device cycles (0 when the
                                 ///< backend is CPU or the run is untimed)
  const ParticleSet* particles = nullptr;
};

/// Called synchronously at the end of every step(). Default: none.
using StepObserver = std::function<void(const StepStats&)>;

}  // namespace gravit
