// spawn.hpp - deterministic initial-condition generators.
//
// Gravit's appeal is pretty gravity patterns; these generators produce the
// classic test scenes: a uniform cube (benchmarking), a Plummer sphere
// (the standard astrophysics model with an analytic density profile), a
// cold rotating disk, and a two-cluster collision (examples/galaxy_collision).
#pragma once

#include <cstdint>

#include "gravit/particle.hpp"

namespace gravit {

/// Uniformly random positions in [-half, half]^3, small random velocities,
/// unit total mass.
[[nodiscard]] ParticleSet spawn_uniform_cube(std::size_t n, float half = 1.0f,
                                             std::uint32_t seed = 1);

/// Plummer (1911) sphere with scale radius a, in approximate virial
/// equilibrium; total mass 1.
[[nodiscard]] ParticleSet spawn_plummer(std::size_t n, float a = 1.0f,
                                        std::uint32_t seed = 2);

/// A thin disk rotating about +z with roughly circular orbits around a
/// central mass concentration.
[[nodiscard]] ParticleSet spawn_disk(std::size_t n, float radius = 1.0f,
                                     std::uint32_t seed = 3);

/// Two Plummer spheres approaching each other along x with impact parameter
/// b - a miniature galaxy collision.
[[nodiscard]] ParticleSet spawn_cluster_pair(std::size_t n_per_cluster,
                                             float separation = 4.0f,
                                             float impact_parameter = 0.5f,
                                             float approach_speed = 0.3f,
                                             std::uint32_t seed = 4);

}  // namespace gravit
