// gpu_simulation.hpp - the device-resident simulation loop.
//
// Fig. 12's protocol pays the PCIe copies on every measurement because the
// paper times one kernel invocation end to end. A production port keeps the
// particles resident: upload once, then alternate the far-field force
// kernel and the leapfrog update kernel on the device, downloading only
// when a snapshot is wanted. bench/ext_resident quantifies how much of the
// end-to-end time the paper's protocol spends on the bus.
#pragma once

#include <optional>

#include "gravit/gpu_kernels2.hpp"
#include "gravit/kernels.hpp"
#include "gravit/observer.hpp"
#include "gravit/particle.hpp"
#include "vgpu/device.hpp"

namespace gravit {

/// How the timed resident loop charges per-step launch cost.
enum class GpuExecMode : std::uint8_t {
  /// One driver launch per kernel per step (the classic resident loop):
  /// every step pays 2x DeviceSpec::launch_overhead_ms().
  kPerStepLaunch,
  /// One persistent launch loops over the steps on the device: the single
  /// launch overhead is charged once, and each step pays two simulated
  /// grid-wide syncs (TimingParams::grid_sync_cycles) instead - the force
  /// and integrate phases still need a device-wide barrier between them.
  /// Kernel cycles are bit-identical with kPerStepLaunch.
  kPersistent,
};

struct GpuSimulationOptions {
  KernelOptions kernel;  ///< force-kernel variant (layout, unroll, ...)
  float dt = 0.01f;
  vgpu::DriverModel driver = vgpu::DriverModel::kCuda10;
  /// true: run kernels under the timing model (exact results *and* a
  /// device-time ledger; slower to simulate). false: functional only.
  bool timed = false;
  /// Launch-cost model for timed runs (ignored when !timed).
  GpuExecMode mode = GpuExecMode::kPerStepLaunch;
  std::size_t device_memory = 512u * 1024 * 1024;
  /// Per-step telemetry hook (may be empty). StepStats::particles is null
  /// here - the state lives on the device; call download() for a snapshot.
  StepObserver observer;
};

class GpuSimulation {
 public:
  GpuSimulation(const ParticleSet& initial, GpuSimulationOptions options);

  /// One force + integrate round trip, entirely on the device.
  void step();
  void run(std::uint32_t steps);

  /// Download the current particle state.
  [[nodiscard]] ParticleSet download() const;

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::uint64_t steps_taken() const { return steps_; }
  /// Simulated device milliseconds accumulated so far (timed mode), plus
  /// the initial upload; excludes downloads requested by the caller.
  [[nodiscard]] double device_ms() const { return dev_.timeline_ms(); }
  [[nodiscard]] const vgpu::LaunchStats& last_force_stats() const {
    return force_stats_;
  }
  [[nodiscard]] const BuiltKernel& force_kernel() const { return force_; }

 private:
  GpuSimulationOptions options_;
  BuiltKernel force_;
  vgpu::Program integrate_;
  layout::PhysicalLayout phys_;
  mutable vgpu::Device dev_;
  vgpu::Buffer image_;
  vgpu::Buffer accel_;
  std::uint32_t n_ = 0;
  std::uint32_t n_pad_ = 0;
  std::vector<std::uint32_t> force_params_;
  std::vector<std::uint32_t> integrate_params_;
  vgpu::LaunchStats force_stats_;
  double time_ = 0.0;
  std::uint64_t steps_ = 0;
};

}  // namespace gravit
